package analysis

import "rvnegtest/internal/isa"

// The abstract domain is a flat lattice per integer register:
//
//	        Dirty            (any value; top)
//	      /   |    \
//	Clean  Const(a) Const(b) ...
//	      \   |    /
//	        Bottom           (no incoming path yet)
//
// Clean means "still holds the data-window address the template loaded
// into it" — the only value a memory-access base register may carry
// (section IV-B/C of the paper). Const(c) means "provably holds the
// 32-bit constant c on every feasible path", which is what lets the
// engine fold statically decided branches. Everything else is Dirty.
// Writes never produce Clean: a computed value is not a guaranteed
// window address even when it happens to equal one.

type vkind uint8

const (
	vBottom vkind = iota
	vConst
	vClean
	vDirty
)

// value is one lattice element.
type value struct {
	k vkind
	c uint32 // constant payload, meaningful when k == vConst
}

var (
	dirty  = value{k: vDirty}
	clean  = value{k: vClean}
	bottom = value{}
)

func constant(c uint32) value { return value{k: vConst, c: c} }

// join is the least upper bound of two lattice elements.
func join(a, b value) value {
	switch {
	case a.k == vBottom:
		return b
	case b.k == vBottom:
		return a
	case a.k == b.k && (a.k != vConst || a.c == b.c):
		return a
	default:
		return dirty
	}
}

// regState is the abstract machine state at a program point: one lattice
// value per integer register. x0 is pinned to Const 0. A state with
// reach == false is the bottom element of the state lattice (the program
// point has no feasible incoming path yet).
type regState struct {
	reach bool
	regs  [32]value
}

// entryState is the abstract state at bytestream offset 0: the template
// initializes x30/x31 with the data-window address (clean) and x0 is
// architecturally zero; every other register holds template-dependent
// data (dirty).
func entryState() regState {
	var s regState
	s.reach = true
	for i := range s.regs {
		s.regs[i] = dirty
	}
	s.regs[0] = constant(0)
	s.regs[30] = clean
	s.regs[31] = clean
	return s
}

// get reads a register's abstract value (x0 always reads Const 0).
func (s *regState) get(r isa.Reg) value {
	if r == 0 {
		return constant(0)
	}
	return s.regs[r]
}

// set writes a register's abstract value (writes to x0 are discarded).
func (s *regState) set(r isa.Reg, v value) {
	if r != 0 {
		s.regs[r] = v
	}
}

// joinInto merges o into s, reporting whether s changed (the fixpoint's
// monotone update at CFG merge points).
func (s *regState) joinInto(o *regState) bool {
	if !o.reach {
		return false
	}
	if !s.reach {
		*s = *o
		return true
	}
	changed := false
	for i := 1; i < 32; i++ {
		j := join(s.regs[i], o.regs[i])
		if j != s.regs[i] {
			s.regs[i] = j
			changed = true
		}
	}
	return changed
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// foldALU returns the abstract result of an RD-writing instruction given
// the pre-state. It folds exactly the RV32I computational subset whose
// semantics are total and platform-independent, mirroring the executor's
// concrete semantics bit for bit; every other writer produces Dirty.
// Loads produce Dirty even from a clean base (the loaded value is window
// data, not a guaranteed address), and AUIPC/JAL produce Dirty because
// they materialize layout-dependent absolute addresses.
func foldALU(inst isa.Inst, s *regState) value {
	imm := uint32(inst.Imm)
	switch inst.Op {
	case isa.OpLUI:
		return constant(imm)
	case isa.OpADDI, isa.OpSLTI, isa.OpSLTIU, isa.OpXORI, isa.OpORI, isa.OpANDI,
		isa.OpSLLI, isa.OpSRLI, isa.OpSRAI:
		a := s.get(inst.Rs1)
		if a.k != vConst {
			return dirty
		}
		switch inst.Op {
		case isa.OpADDI:
			return constant(a.c + imm)
		case isa.OpSLTI:
			return constant(b2u(int32(a.c) < inst.Imm))
		case isa.OpSLTIU:
			return constant(b2u(a.c < imm))
		case isa.OpXORI:
			return constant(a.c ^ imm)
		case isa.OpORI:
			return constant(a.c | imm)
		case isa.OpANDI:
			return constant(a.c & imm)
		case isa.OpSLLI:
			return constant(a.c << imm)
		case isa.OpSRLI:
			return constant(a.c >> imm)
		default: // OpSRAI
			return constant(uint32(int32(a.c) >> imm))
		}
	case isa.OpADD, isa.OpSUB, isa.OpSLL, isa.OpSLT, isa.OpSLTU, isa.OpXOR,
		isa.OpSRL, isa.OpSRA, isa.OpOR, isa.OpAND:
		a, b := s.get(inst.Rs1), s.get(inst.Rs2)
		if a.k != vConst || b.k != vConst {
			return dirty
		}
		switch inst.Op {
		case isa.OpADD:
			return constant(a.c + b.c)
		case isa.OpSUB:
			return constant(a.c - b.c)
		case isa.OpSLL:
			return constant(a.c << (b.c & 31))
		case isa.OpSLT:
			return constant(b2u(int32(a.c) < int32(b.c)))
		case isa.OpSLTU:
			return constant(b2u(a.c < b.c))
		case isa.OpXOR:
			return constant(a.c ^ b.c)
		case isa.OpSRL:
			return constant(a.c >> (b.c & 31))
		case isa.OpSRA:
			return constant(uint32(int32(a.c) >> (b.c & 31)))
		default: // OpOR, OpAND
			if inst.Op == isa.OpOR {
				return constant(a.c | b.c)
			}
			return constant(a.c & b.c)
		}
	}
	return dirty
}

// branchOutcome evaluates a conditional branch against the pre-state.
// When both operands are known constants the branch folds: exactly one
// edge is feasible and the other is statically dead. Otherwise both edges
// stay feasible (folded == false).
func branchOutcome(inst isa.Inst, s *regState) (taken, folded bool) {
	a, b := s.get(inst.Rs1), s.get(inst.Rs2)
	if a.k != vConst || b.k != vConst {
		return false, false
	}
	switch inst.Op {
	case isa.OpBEQ:
		return a.c == b.c, true
	case isa.OpBNE:
		return a.c != b.c, true
	case isa.OpBLT:
		return int32(a.c) < int32(b.c), true
	case isa.OpBGE:
		return int32(a.c) >= int32(b.c), true
	case isa.OpBLTU:
		return a.c < b.c, true
	case isa.OpBGEU:
		return a.c >= b.c, true
	}
	return false, false
}

// transfer applies one non-branch instruction's effect to the state in
// place. Branches have no state effect; JAL and every other RD-writer go
// through here.
func transfer(inst isa.Inst, s *regState) {
	info := inst.Info()
	if info == nil {
		return
	}
	if info.Flags.Is(isa.FlagWritesRD) {
		if inst.Op == isa.OpJAL {
			// The link register receives an absolute code address
			// (layout-dependent).
			s.set(inst.Rd, dirty)
			return
		}
		s.set(inst.Rd, foldALU(inst, s))
	}
}
