package analysis

import "rvnegtest/internal/isa"

// nodeKind classifies an instruction site for control-flow purposes.
type nodeKind uint8

const (
	// kindFall: exactly one successor, the next instruction (pc+size).
	kindFall nodeKind = iota
	// kindJump: unconditional static jump (JAL), successor pc+imm.
	kindJump
	// kindBranch: conditional branch, successors pc+size and pc+imm
	// (folded to one by the fixpoint when the outcome is static).
	kindBranch
	// kindExit: the path ends deterministically here (illegal encoding or
	// ECALL — both trap into the template's handler, which ends the test).
	kindExit
	// kindForbidden: a forbidden instruction; reachable ⇒ drop. No
	// successors are modelled (the stream is rejected anyway, and JALR-like
	// members have no static successor at all).
	kindForbidden
	// kindStraddle: a 32-bit encoding whose upper half lies beyond the
	// bytestream; reachable ⇒ drop.
	kindStraddle
	// kindTrapExit (trap mode only): the instruction traps deterministically
	// (illegal encoding, ECALL, EBREAK); the recording handler resumes
	// execution at (pc &^ 3) + 4, the single modelled successor.
	kindTrapExit
)

// node is one decoded instruction site. Distinct sites may overlap in the
// byte stream (a branch into the middle of a 32-bit word starts a second,
// overlapping instruction stream); the CFG models each site separately at
// halfword granularity.
type node struct {
	pc   int32
	inst isa.Inst
	kind nodeKind
	// trap records the analysis mode the node was decoded under; in trap
	// mode every non-terminal node carries a conservative trap-resume edge
	// (see resume).
	trap bool
	// blk is the basic block the node belongs to.
	blk *block
	// cleanMask is the bitmask of Clean registers in the node's final
	// in-state, filled by the post-fixpoint walk (mutator guidance).
	cleanMask uint32
}

// resume is the offset where the trap template's recording handler lands
// after a fault at this node: mepc is masked to the enclosing word and
// advanced one word ((pc &^ 3) + 4). The result is always strictly greater
// than pc and never exceeds the padded length, so resume edges are forward
// and in-bounds by construction.
func (nd *node) resume() int32 { return (nd.pc &^ 3) + 4 }

// addResume appends the trap-resume edge to a successor set in trap mode,
// deduplicating against existing targets (for word-aligned 32-bit
// instructions and for compressed instructions in the upper halfword the
// resume offset coincides with the fall-through, so straight-line code
// keeps single-successor blocks). The exhaustive oracle applies the same
// dedup rule, which keeps the fixpoint engine's path counts bounded by the
// enumerator's.
func (nd *node) addResume(ts [3]int32, n int) ([3]int32, int) {
	if !nd.trap || nd.kind == kindTrapExit || nd.terminal() {
		return ts, n
	}
	r := nd.resume()
	for _, t := range ts[:n] {
		if t == r {
			return ts, n
		}
	}
	ts[n] = r
	return ts, n + 1
}

// staticTargets writes the node's static successor offsets into ts and
// returns how many there are, ignoring feasibility. Targets may lie
// outside [0, n] (bounds are a reachability check, not a decode error)
// and n itself means "fall off the end" (accepted exit).
func (nd *node) staticTargets() (ts [3]int32, n int) {
	switch nd.kind {
	case kindFall:
		ts[0] = nd.pc + int32(nd.inst.Size)
		n = 1
	case kindJump:
		ts[0] = nd.pc + nd.inst.Imm
		n = 1
	case kindBranch:
		ts[0] = nd.pc + int32(nd.inst.Size)
		ts[1] = nd.pc + nd.inst.Imm
		n = 2
	case kindTrapExit:
		ts[0] = nd.resume()
		return ts, 1
	default:
		return ts, 0
	}
	return nd.addResume(ts, n)
}

// feasibleTargets returns the successor offsets the fixpoint considers
// live given the node's in-state: a branch whose operands are known
// constants folds to a single unconditional edge. In trap mode the
// conservative resume edge stays attached even to a folded branch (the
// fold decides the branch outcome, not whether the taken-side fetch can
// fault).
func (nd *node) feasibleTargets(s *regState) ([3]int32, int) {
	if nd.kind == kindBranch {
		if taken, folded := branchOutcome(nd.inst, s); folded {
			var ts [3]int32
			if taken {
				ts[0] = nd.pc + nd.inst.Imm
			} else {
				ts[0] = nd.pc + int32(nd.inst.Size)
			}
			return nd.addResume(ts, 1)
		}
	}
	return nd.staticTargets()
}

// terminal reports whether the node ends its path unconditionally (no
// modelled successors).
func (nd *node) terminal() bool {
	return nd.kind == kindExit || nd.kind == kindForbidden || nd.kind == kindStraddle
}

// block is one basic block: a maximal straight-line chain of nodes. Only
// the last node may transfer control; in is the fixpoint's joined
// abstract state at the block head.
type block struct {
	id    int
	nodes []*node
	in    regState
}

func (b *block) head() *node { return b.nodes[0] }
func (b *block) last() *node { return b.nodes[len(b.nodes)-1] }

// cfg is the control-flow graph over the padded bytestream.
type cfg struct {
	n      int32   // padded length
	trap   bool    // trap-suite analysis mode
	padded []byte  // zero-padded copy of the bytestream
	sites  []*node // indexed pc/2; nil where no instruction starts

	// store, blocks and chain are fixed-capacity arenas (site count is at
	// most n/2, leader count at most the site count, and every node joins
	// exactly one block's chain), so append never reallocates and interior
	// pointers stay valid. blocks is addressed by index == block id;
	// block.nodes slices are windows into chain.
	store  []node
	blocks []block
	chain  []*node
}

func (g *cfg) at(pc int32) *node {
	if pc < 0 || pc >= g.n {
		return nil
	}
	return g.sites[pc/2]
}

// decodeNode decodes the instruction site at pc and classifies it under
// the graph's analysis mode.
func (g *cfg) decodeNode(pc int32) *node {
	g.store = append(g.store, node{pc: pc, trap: g.trap})
	nd := &g.store[len(g.store)-1]
	lo := uint32(g.padded[pc]) | uint32(g.padded[pc+1])<<8
	if lo&3 == 3 {
		if pc+4 > g.n {
			nd.kind = kindStraddle
			return nd
		}
		word := lo | uint32(g.padded[pc+2])<<16 | uint32(g.padded[pc+3])<<24
		nd.inst = isa.Ref.Decode32(word)
	} else {
		nd.inst = isa.Ref.DecodeC(uint16(lo))
	}
	info := nd.inst.Info()
	switch {
	case info == nil:
		// Illegal encoding: a deterministic exception. In the user suite the
		// handler ends the test; in the trap suite it records and resumes.
		nd.kind = exitKind(g.trap)
	case g.trap:
		// Trap mode: only the instructions that escape the recording
		// handler's control stay forbidden; deliberate trappers become
		// resuming trap exits, and everything else (CSR ops, SFENCE.VMA)
		// executes as a plain instruction.
		switch {
		case TrapForbidden(nd.inst):
			nd.kind = kindForbidden
		case nd.inst.Op == isa.OpECALL || nd.inst.Op == isa.OpEBREAK:
			nd.kind = kindTrapExit
		case nd.inst.Op == isa.OpJAL:
			nd.kind = kindJump
		case info.Flags.Is(isa.FlagBranch):
			nd.kind = kindBranch
		default:
			nd.kind = kindFall
		}
	case info.Flags.Is(isa.FlagForbidden):
		nd.kind = kindForbidden
	case nd.inst.Op == isa.OpECALL:
		// Deterministic trap into the handler: path ends.
		nd.kind = kindExit
	case nd.inst.Op == isa.OpJAL:
		nd.kind = kindJump
	case info.Flags.Is(isa.FlagBranch):
		nd.kind = kindBranch
	default:
		nd.kind = kindFall
	}
	return nd
}

// exitKind maps a deterministic trap site to its mode-dependent kind.
func exitKind(trap bool) nodeKind {
	if trap {
		return kindTrapExit
	}
	return kindExit
}

// build discovers every instruction site statically reachable from
// offset 0 (following all edges, feasible or not) and partitions the
// sites into basic blocks. bs is the raw bytestream; it is padded to a
// whole word with zero bytes, as the template's injection area does.
func (g *cfg) build(bs []byte, trap bool) {
	n := int32(len(bs)+3) &^ 3
	g.n = n
	g.trap = trap
	if n == 0 {
		return
	}
	// One buffer serves the padded stream and the two per-halfword
	// leader/predecessor byte maps used below.
	buf := make([]byte, 2*n)
	g.padded = buf[:n]
	copy(g.padded, bs)
	g.sites = make([]*node, n/2)
	g.store = make([]node, 0, n/2)

	// Discovery: worklist over instruction offsets. Branch/jump offsets
	// are always even, so sites live on halfword boundaries.
	work := make([]int32, 1, n/2)
	g.sites[0] = g.decodeNode(0)
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		ts, nt := g.sites[pc/2].staticTargets()
		for _, t := range ts[:nt] {
			if t < 0 || t >= n || g.sites[t/2] != nil {
				continue // out of range (checked later) or already decoded
			}
			g.sites[t/2] = g.decodeNode(t)
			work = append(work, t)
		}
	}

	// Leader identification: offset 0, every target of a node that
	// transfers control (branch, jump, trap exit, or any node whose
	// trap-resume edge forks off the fall-through), and every site with
	// more than one static predecessor.
	leader := buf[n : n+n/2]
	preds := buf[n+n/2:]
	leader[0] = 1
	for i := range g.store {
		nd := &g.store[i]
		ts, nt := nd.staticTargets()
		transfers := nd.kind != kindFall || nt > 1
		for _, t := range ts[:nt] {
			if t < 0 || t >= n {
				continue
			}
			if transfers {
				leader[t/2] = 1
			}
			if preds[t/2] < 2 {
				preds[t/2]++
			}
		}
	}
	nLeaders := 0
	for i, p := range preds {
		if p > 1 {
			leader[i] = 1
		}
		if leader[i] != 0 && g.sites[i] != nil {
			nLeaders++
		}
	}

	// Chain formation: from each leader, follow single fall-through
	// successors until a terminator, a control transfer, or the next
	// leader.
	g.blocks = make([]block, 0, nLeaders)
	g.chain = make([]*node, 0, len(g.store))
	for i, nd := range g.sites {
		if nd == nil || leader[i] == 0 {
			continue
		}
		g.blocks = append(g.blocks, block{id: len(g.blocks)})
		b := &g.blocks[len(g.blocks)-1]
		start := len(g.chain)
		for {
			nd.blk = b
			g.chain = append(g.chain, nd)
			if nd.kind != kindFall {
				break
			}
			ts, nt := nd.staticTargets()
			if nt != 1 {
				break // trap-resume fork: the node terminates its block
			}
			t := ts[0]
			if t >= g.n || g.sites[t/2] == nil || leader[t/2] != 0 {
				break
			}
			nd = g.sites[t/2]
		}
		b.nodes = g.chain[start:len(g.chain):len(g.chain)]
	}
}
