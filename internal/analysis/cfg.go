package analysis

import "rvnegtest/internal/isa"

// nodeKind classifies an instruction site for control-flow purposes.
type nodeKind uint8

const (
	// kindFall: exactly one successor, the next instruction (pc+size).
	kindFall nodeKind = iota
	// kindJump: unconditional static jump (JAL), successor pc+imm.
	kindJump
	// kindBranch: conditional branch, successors pc+size and pc+imm
	// (folded to one by the fixpoint when the outcome is static).
	kindBranch
	// kindExit: the path ends deterministically here (illegal encoding or
	// ECALL — both trap into the template's handler, which ends the test).
	kindExit
	// kindForbidden: a forbidden instruction; reachable ⇒ drop. No
	// successors are modelled (the stream is rejected anyway, and JALR-like
	// members have no static successor at all).
	kindForbidden
	// kindStraddle: a 32-bit encoding whose upper half lies beyond the
	// bytestream; reachable ⇒ drop.
	kindStraddle
)

// node is one decoded instruction site. Distinct sites may overlap in the
// byte stream (a branch into the middle of a 32-bit word starts a second,
// overlapping instruction stream); the CFG models each site separately at
// halfword granularity.
type node struct {
	pc   int32
	inst isa.Inst
	kind nodeKind
	// blk is the basic block the node belongs to.
	blk *block
	// cleanMask is the bitmask of Clean registers in the node's final
	// in-state, filled by the post-fixpoint walk (mutator guidance).
	cleanMask uint32
}

// staticTargets writes the node's static successor offsets into ts and
// returns how many there are, ignoring feasibility. Targets may lie
// outside [0, n] (bounds are a reachability check, not a decode error)
// and n itself means "fall off the end" (accepted exit).
func (nd *node) staticTargets() (ts [2]int32, n int) {
	switch nd.kind {
	case kindFall:
		ts[0] = nd.pc + int32(nd.inst.Size)
		return ts, 1
	case kindJump:
		ts[0] = nd.pc + nd.inst.Imm
		return ts, 1
	case kindBranch:
		ts[0] = nd.pc + int32(nd.inst.Size)
		ts[1] = nd.pc + nd.inst.Imm
		return ts, 2
	}
	return ts, 0
}

// feasibleTargets returns the successor offsets the fixpoint considers
// live given the node's in-state: a branch whose operands are known
// constants folds to a single unconditional edge.
func (nd *node) feasibleTargets(s *regState) ([2]int32, int) {
	if nd.kind == kindBranch {
		if taken, folded := branchOutcome(nd.inst, s); folded {
			var ts [2]int32
			if taken {
				ts[0] = nd.pc + nd.inst.Imm
			} else {
				ts[0] = nd.pc + int32(nd.inst.Size)
			}
			return ts, 1
		}
	}
	return nd.staticTargets()
}

// terminal reports whether the node ends its path unconditionally (no
// modelled successors).
func (nd *node) terminal() bool {
	return nd.kind == kindExit || nd.kind == kindForbidden || nd.kind == kindStraddle
}

// block is one basic block: a maximal straight-line chain of nodes. Only
// the last node may transfer control; in is the fixpoint's joined
// abstract state at the block head.
type block struct {
	id    int
	nodes []*node
	in    regState
}

func (b *block) head() *node { return b.nodes[0] }
func (b *block) last() *node { return b.nodes[len(b.nodes)-1] }

// cfg is the control-flow graph over the padded bytestream.
type cfg struct {
	n      int32   // padded length
	padded []byte  // zero-padded copy of the bytestream
	sites  []*node // indexed pc/2; nil where no instruction starts

	// store, blocks and chain are fixed-capacity arenas (site count is at
	// most n/2, leader count at most the site count, and every node joins
	// exactly one block's chain), so append never reallocates and interior
	// pointers stay valid. blocks is addressed by index == block id;
	// block.nodes slices are windows into chain.
	store  []node
	blocks []block
	chain  []*node
}

func (g *cfg) at(pc int32) *node {
	if pc < 0 || pc >= g.n {
		return nil
	}
	return g.sites[pc/2]
}

// decodeNode decodes the instruction site at pc and classifies it.
func (g *cfg) decodeNode(pc int32) *node {
	g.store = append(g.store, node{pc: pc})
	nd := &g.store[len(g.store)-1]
	lo := uint32(g.padded[pc]) | uint32(g.padded[pc+1])<<8
	if lo&3 == 3 {
		if pc+4 > g.n {
			nd.kind = kindStraddle
			return nd
		}
		word := lo | uint32(g.padded[pc+2])<<16 | uint32(g.padded[pc+3])<<24
		nd.inst = isa.Ref.Decode32(word)
	} else {
		nd.inst = isa.Ref.DecodeC(uint16(lo))
	}
	info := nd.inst.Info()
	switch {
	case info == nil:
		// Illegal encoding: the exception ends execution deterministically.
		nd.kind = kindExit
	case info.Flags.Is(isa.FlagForbidden):
		nd.kind = kindForbidden
	case nd.inst.Op == isa.OpECALL:
		// Deterministic trap into the handler: path ends.
		nd.kind = kindExit
	case nd.inst.Op == isa.OpJAL:
		nd.kind = kindJump
	case info.Flags.Is(isa.FlagBranch):
		nd.kind = kindBranch
	default:
		nd.kind = kindFall
	}
	return nd
}

// build discovers every instruction site statically reachable from
// offset 0 (following all edges, feasible or not) and partitions the
// sites into basic blocks. bs is the raw bytestream; it is padded to a
// whole word with zero bytes, as the template's injection area does.
func (g *cfg) build(bs []byte) {
	n := int32(len(bs)+3) &^ 3
	g.n = n
	if n == 0 {
		return
	}
	// One buffer serves the padded stream and the two per-halfword
	// leader/predecessor byte maps used below.
	buf := make([]byte, 2*n)
	g.padded = buf[:n]
	copy(g.padded, bs)
	g.sites = make([]*node, n/2)
	g.store = make([]node, 0, n/2)

	// Discovery: worklist over instruction offsets. Branch/jump offsets
	// are always even, so sites live on halfword boundaries.
	work := make([]int32, 1, n/2)
	g.sites[0] = g.decodeNode(0)
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		ts, nt := g.sites[pc/2].staticTargets()
		for _, t := range ts[:nt] {
			if t < 0 || t >= n || g.sites[t/2] != nil {
				continue // out of range (checked later) or already decoded
			}
			g.sites[t/2] = g.decodeNode(t)
			work = append(work, t)
		}
	}

	// Leader identification: offset 0, every target of a branch or jump,
	// and every site with more than one static predecessor.
	leader := buf[n : n+n/2]
	preds := buf[n+n/2:]
	leader[0] = 1
	for i := range g.store {
		nd := &g.store[i]
		fromBranch := nd.kind == kindBranch || nd.kind == kindJump
		ts, nt := nd.staticTargets()
		for _, t := range ts[:nt] {
			if t < 0 || t >= n {
				continue
			}
			if fromBranch {
				leader[t/2] = 1
			}
			if preds[t/2] < 2 {
				preds[t/2]++
			}
		}
	}
	nLeaders := 0
	for i, p := range preds {
		if p > 1 {
			leader[i] = 1
		}
		if leader[i] != 0 && g.sites[i] != nil {
			nLeaders++
		}
	}

	// Chain formation: from each leader, follow single fall-through
	// successors until a terminator, a control transfer, or the next
	// leader.
	g.blocks = make([]block, 0, nLeaders)
	g.chain = make([]*node, 0, len(g.store))
	for i, nd := range g.sites {
		if nd == nil || leader[i] == 0 {
			continue
		}
		g.blocks = append(g.blocks, block{id: len(g.blocks)})
		b := &g.blocks[len(g.blocks)-1]
		start := len(g.chain)
		for {
			nd.blk = b
			g.chain = append(g.chain, nd)
			if nd.kind != kindFall {
				break
			}
			t := nd.pc + int32(nd.inst.Size)
			if t >= g.n || g.sites[t/2] == nil || leader[t/2] != 0 {
				break
			}
			nd = g.sites[t/2]
		}
		b.nodes = g.chain[start:len(g.chain):len(g.chain)]
	}
}
