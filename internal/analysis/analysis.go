package analysis

import "rvnegtest/internal/isa"

// Verdict is the engine's decision for one bytestream, mirroring the
// filter's historical result shape.
type Verdict struct {
	// Reason is ReasonNone when the bytestream is accepted.
	Reason Reason
	// PC is the local offset of the instruction that caused a drop (for
	// ReasonOutOfBounds: the offending target offset).
	PC int32
	// Op is the operation at that offset (when meaningful).
	Op isa.Op
	// Paths is the number of accepted control-flow paths through the
	// feasible CFG (meaningful when accepted; saturates at 1<<31).
	Paths int
}

// Analysis is the result of analysing one bytestream: the basic-block
// CFG, the fixpoint register states, and the accept/drop verdict.
type Analysis struct {
	// N is the padded bytestream length.
	N int32
	// Verdict is the filter decision.
	Verdict Verdict

	g cfg
}

// maxPaths saturates the accepted-path count.
const maxPaths = 1 << 31

// Analyze builds the CFG for the bytestream, runs the worklist fixpoint
// over the register lattice, and derives the verdict under the user-suite
// semantics. It never rejects for budget reasons: cost is linear in
// blocks x registers.
func Analyze(bs []byte) *Analysis { return AnalyzeMode(bs, false) }

// AnalyzeMode is Analyze with an explicit suite family: trap=true selects
// the trap-suite semantics (see the mode overview in trapmode.go) —
// deliberate traps resume past the faulting word instead of ending the
// path, the forbidden set shrinks to TrapForbidden, and the memory
// discipline keeps only the clean-base store rule.
func AnalyzeMode(bs []byte, trap bool) *Analysis {
	a := &Analysis{}
	a.g.build(bs, trap)
	g := &a.g
	a.N = g.n
	if g.n == 0 {
		// Empty stream: execution falls straight off the end.
		a.Verdict = Verdict{Reason: ReasonNone, Paths: 1}
		return a
	}

	a.fixpoint()
	a.deriveVerdict()
	return a
}

// fixpoint runs the worklist iteration: block in-states are joined at
// merge points and propagated through block transfer functions until
// stable. The lattice has finite height (each register can only climb
// Bottom -> Const/Clean -> Dirty) and transfer functions are monotone, so
// termination is guaranteed without any step budget.
func (a *Analysis) fixpoint() {
	g := &a.g
	entry := g.at(0).blk
	entry.in = entryState()

	inWork := make([]bool, len(g.blocks))
	work := make([]*block, 1, len(g.blocks))
	work[0] = entry
	inWork[entry.id] = true
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[b.id] = false

		// Transfer through the chain; only the last node moves control.
		s := b.in
		for _, nd := range b.nodes[:len(b.nodes)-1] {
			transfer(nd.inst, &s)
		}
		last := b.last()
		if last.terminal() {
			continue
		}
		// Branches read state before any write; everything else applies
		// its effect before the edge.
		var out regState
		if last.kind == kindBranch {
			out = s
		} else {
			out = s
			transfer(last.inst, &out)
		}
		ts, nt := last.feasibleTargets(&s)
		for _, t := range ts[:nt] {
			tn := g.at(t)
			if tn == nil {
				continue // exit (t == n) or out of bounds: no propagation
			}
			if tn.blk.in.joinInto(&out) && !inWork[tn.blk.id] {
				inWork[tn.blk.id] = true
				work = append(work, tn.blk)
			}
		}
	}
}

// deriveVerdict scans the stabilized CFG for violations in ascending PC
// order (first hit wins, checks within a site ordered as the historical
// filter ordered them), then runs cycle detection and path counting over
// the feasible subgraph.
func (a *Analysis) deriveVerdict() {
	g := &a.g
	// Per-node final in-states: walk each reachable block once, recording
	// the clean mask for consumers and checking node-level violations.
	type violation struct {
		at     int32 // scan key: the site where the violation is observed
		reason Reason
		pc     int32 // reported offset
		op     isa.Op
	}
	var best violation
	found := false
	consider := func(v violation) {
		if !found || v.at < best.at {
			best, found = v, true
		}
	}

	for bi := range g.blocks {
		b := &g.blocks[bi]
		if !b.in.reach {
			continue
		}
		s := b.in
		for i, nd := range b.nodes {
			nd.cleanMask = cleanMaskOf(&s)
			switch nd.kind {
			case kindStraddle:
				consider(violation{nd.pc, ReasonStraddle, nd.pc, isa.OpIllegal})
				continue
			case kindForbidden:
				consider(violation{nd.pc, ReasonForbidden, nd.pc, nd.inst.Op})
				continue
			case kindExit, kindTrapExit:
				continue
			}
			info := nd.inst.Info()
			// Memory-access discipline against the joined state. User suite:
			// the base register must still hold the data-window address and
			// the immediate must be access-size aligned. Trap suite: faults
			// are desired (recorded) events, so dirty-base loads and
			// unaligned accesses pass; only stores (including SC and AMOs)
			// keep the clean-base rule — a wild store could overwrite the
			// code, the handler, or the signature itself.
			if info.Flags.Any(isa.FlagLoad | isa.FlagStore) {
				dirtyBase := s.get(nd.inst.Rs1).k != vClean
				if g.trap {
					if info.Flags.Is(isa.FlagStore) && dirtyBase {
						consider(violation{nd.pc, ReasonDirtyAddress, nd.pc, nd.inst.Op})
					}
				} else if dirtyBase {
					consider(violation{nd.pc, ReasonDirtyAddress, nd.pc, nd.inst.Op})
				} else if info.MemSize > 1 && nd.inst.Imm&int32(info.MemSize-1) != 0 {
					consider(violation{nd.pc, ReasonUnalignedImm, nd.pc, nd.inst.Op})
				}
			}
			// Feasible successors leaving [0, n] are out-of-bounds control
			// flow (t == n is the accepted fall-off-the-end exit).
			if i == len(b.nodes)-1 {
				ts, nt := nd.feasibleTargets(&s)
				for _, t := range ts[:nt] {
					if t < 0 || t > g.n {
						consider(violation{nd.pc, ReasonOutOfBounds, t, isa.OpIllegal})
					}
				}
			}
			transfer(nd.inst, &s)
		}
	}
	if found {
		a.Verdict = Verdict{Reason: best.reason, PC: best.pc, Op: best.op}
		return
	}

	// Loop detection: any cycle among feasible edges of reachable blocks.
	if pc, looped := a.findCycle(); looped {
		a.Verdict = Verdict{Reason: ReasonLoop, PC: pc, Op: isa.OpIllegal}
		return
	}

	a.Verdict = Verdict{Reason: ReasonNone, Paths: a.countPaths()}
}

// blockTargets returns the feasible successor offsets of a reachable
// block's terminator, evaluated against the fixpoint state at that point.
func (a *Analysis) blockTargets(b *block) ([3]int32, int) {
	s := b.in
	for _, nd := range b.nodes[:len(b.nodes)-1] {
		transfer(nd.inst, &s)
	}
	last := b.last()
	if last.terminal() {
		return [3]int32{}, 0
	}
	return last.feasibleTargets(&s)
}

// findCycle performs an iterative DFS over feasible edges between
// reachable blocks; a back edge to a block on the current DFS path is a
// potential loop. Returns the offset of the revisited block head.
func (a *Analysis) findCycle() (int32, bool) {
	g := &a.g
	const (
		white = iota // unvisited
		grey         // on the current DFS path
		black        // fully explored
	)
	// Per-block DFS bookkeeping lives in one slice; the stack holds block
	// ids.
	type dfsEntry struct {
		succs [3]int32
		nsucc uint8
		next  uint8 // next successor index to explore
		color uint8
	}
	st := make([]dfsEntry, len(g.blocks))
	stack := make([]int32, 0, len(g.blocks))
	push := func(b *block) {
		ts, nt := a.blockTargets(b)
		st[b.id] = dfsEntry{succs: ts, nsucc: uint8(nt), color: grey}
		stack = append(stack, int32(b.id))
	}
	entry := g.at(0).blk
	if !entry.in.reach {
		return 0, false
	}
	push(entry)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		e := &st[id]
		if e.next == e.nsucc {
			e.color = black
			stack = stack[:len(stack)-1]
			continue
		}
		t := e.succs[e.next]
		e.next++
		tn := g.at(t)
		if tn == nil {
			continue // exit edge
		}
		switch st[tn.blk.id].color {
		case grey:
			return tn.blk.head().pc, true
		case white:
			push(tn.blk)
		}
	}
	return 0, false
}

// countPaths counts root-to-exit paths through the feasible DAG
// (deriveVerdict established acyclicity first), saturating at maxPaths.
// This preserves the historical filter's "accepted (N paths)" report.
func (a *Analysis) countPaths() int {
	g := &a.g
	memo := make([]int64, len(g.blocks))
	for i := range memo {
		memo[i] = -1
	}
	return int(a.countFrom(g.at(0).blk, memo))
}

// countFrom is countPaths' memoized recursion over feasible edges.
func (a *Analysis) countFrom(b *block, memo []int64) int64 {
	if memo[b.id] >= 0 {
		return memo[b.id]
	}
	memo[b.id] = 0 // cycle guard; unreachable given acyclicity
	var total int64
	if b.last().kind == kindExit {
		total = 1
	}
	ts, nt := a.blockTargets(b)
	for _, t := range ts[:nt] {
		if tn := a.g.at(t); tn != nil {
			total += a.countFrom(tn.blk, memo)
		} else {
			total++ // fell off the end (t == n)
		}
		if total > maxPaths {
			total = maxPaths
		}
	}
	memo[b.id] = total
	return total
}

// cleanMaskOf extracts the bitmask of Clean registers from a state.
func cleanMaskOf(s *regState) uint32 {
	var m uint32
	for i := 1; i < 32; i++ {
		if s.regs[i].k == vClean {
			m |= 1 << i
		}
	}
	return m
}

// Accepted reports whether the bytestream passed every check.
func (a *Analysis) Accepted() bool { return a.Verdict.Reason == ReasonNone }

// InstAt returns the decoded instruction starting at offset pc, if the
// CFG discovered an instruction site there.
func (a *Analysis) InstAt(pc int32) (isa.Inst, bool) {
	if nd := a.g.at(pc); nd != nil && nd.kind != kindStraddle {
		return nd.inst, true
	}
	return isa.Inst{}, false
}

// Reachable reports whether the instruction site at pc is on some
// feasible path from offset 0.
func (a *Analysis) Reachable(pc int32) bool {
	nd := a.g.at(pc)
	return nd != nil && nd.blk != nil && nd.blk.in.reach
}

// CleanAt returns the bitmask of registers still holding the data-window
// address when execution reaches pc (0 when pc is not a reachable
// instruction site). Consumers use it to pick memory-access base
// registers that keep the stream filter-acceptable.
func (a *Analysis) CleanAt(pc int32) uint32 {
	if !a.Reachable(pc) {
		return 0
	}
	return a.g.at(pc).cleanMask
}

// EachInst visits every discovered instruction site in ascending offset
// order (straddle sites are skipped: they have no decodable instruction).
func (a *Analysis) EachInst(fn func(pc int32, inst isa.Inst, reachable bool)) {
	for _, nd := range a.g.sites {
		if nd == nil || nd.kind == kindStraddle {
			continue
		}
		fn(nd.pc, nd.inst, nd.blk != nil && nd.blk.in.reach)
	}
}

// BlockInfo describes one basic block of the constructed CFG (test and
// tooling introspection).
type BlockInfo struct {
	Start     int32   // offset of the first instruction
	End       int32   // offset one past the last instruction's encoding
	Insts     int     // number of instructions in the block
	Succs     []int32 // feasible successor offsets (N means "exit")
	Reachable bool
}

// Blocks returns the basic blocks in construction order (ascending head
// offset).
func (a *Analysis) Blocks() []BlockInfo {
	out := make([]BlockInfo, 0, len(a.g.blocks))
	for bi := range a.g.blocks {
		b := &a.g.blocks[bi]
		last := b.last()
		info := BlockInfo{
			Start:     b.head().pc,
			End:       last.pc + int32(encSize(last)),
			Insts:     len(b.nodes),
			Reachable: b.in.reach,
		}
		var ts [3]int32
		var nt int
		if b.in.reach {
			ts, nt = a.blockTargets(b)
		} else {
			ts, nt = last.staticTargets()
		}
		info.Succs = append([]int32(nil), ts[:nt]...)
		out = append(out, info)
	}
	return out
}

// encSize is the encoding size of a node in bytes (straddle sites occupy
// the remaining tail).
func encSize(nd *node) int {
	if nd.kind == kindStraddle {
		return 2
	}
	return int(nd.inst.Size)
}
