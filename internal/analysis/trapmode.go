package analysis

import "rvnegtest/internal/isa"

// Trap-suite analysis mode.
//
// The trap-instrumented template (template.FamilyTrap) installs a
// machine-mode handler that records each trap's mcause/mepc/mtval/mstatus
// into a dedicated signature region and resumes execution one word past
// the faulting slot ((mepc &^ 3) + 4). Under that template most of the
// user suite's forbidden envelope becomes *desired* behaviour: illegal
// encodings, ECALL, EBREAK, CSR accesses and unaligned memory traps all
// produce deterministic, comparable signature content instead of ending
// the test. The analysis engine models this as:
//
//   - illegal/ECALL/EBREAK sites become trap exits with a single resume
//     successor instead of terminating the path;
//   - every other non-terminal node carries a conservative trap-resume
//     edge (any instruction may fault under some configuration — FP ops
//     without F, misaligned fetch targets without C, CSR errors — and the
//     engine is configuration-agnostic), deduplicated against the
//     fall-through so aligned straight-line code keeps its block shape;
//   - the forbidden set shrinks to TrapForbidden below;
//   - the memory discipline keeps only the store rule (see deriveVerdict).
//
// Resume offsets are strictly forward, so trap edges can never introduce
// cycles: loop detection and path counting carry over unchanged.

// mtvecCSR is the machine trap-vector base-address CSR (hart.CSRMtvec;
// the literal avoids an analysis→hart dependency).
const mtvecCSR = 0x305

// TrapForbidden reports whether an instruction stays forbidden under the
// trap-suite filter mode. The survivors are exactly the instructions that
// escape the recording handler's control:
//
//   - JALR: a dynamic jump through a dirty register leaves the modelled
//     CFG entirely (and a mispredicted-alignment fault would resume at a
//     point the static analysis cannot bound).
//   - WFI: stalls forever on a platform without interrupt sources.
//   - MRET/SRET/URET outside the handler: MRET redirects execution to a
//     body-controlled mepc; SRET/URET trap today but are reserved for
//     future privilege modes.
//   - CSR writes to mtvec: moving the trap vector away from the recording
//     handler breaks the resume protocol (the very next fault would jump
//     to an arbitrary address). Read-only accesses (CSRRS/C with rs1=x0,
//     CSRRSI/CI with a zero immediate) have no write effect and remain
//     allowed.
func TrapForbidden(inst isa.Inst) bool {
	switch inst.Op {
	case isa.OpJALR, isa.OpWFI, isa.OpMRET, isa.OpSRET, isa.OpURET:
		return true
	case isa.OpCSRRW, isa.OpCSRRWI:
		return inst.CSR == mtvecCSR
	case isa.OpCSRRS, isa.OpCSRRC:
		return inst.CSR == mtvecCSR && inst.Rs1 != 0
	case isa.OpCSRRSI, isa.OpCSRRCI:
		return inst.CSR == mtvecCSR && inst.Imm != 0
	}
	return false
}
