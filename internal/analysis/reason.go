// Package analysis implements the static-analysis engine behind the
// paper's bytestream filter (section IV-C) as a classic dataflow problem:
// a basic-block control-flow graph over the decoded bytestream and a
// worklist fixpoint over a per-register lattice (bottom / known-constant /
// clean-address / dirty) with join at merge points.
//
// The fixpoint formulation makes the filter's cost linear in
// blocks x registers instead of exponential in the number of conditional
// branches, so branch-dense inputs — exactly the shape block-mutation
// fuzzers favour — are decided semantically rather than dropped for budget
// reasons. Tracking known constants additionally lets the engine fold
// conditional branches whose outcome is statically determined into
// unconditional edges, so statically infeasible "loops" and out-of-bounds
// targets no longer cause drops; loop detection becomes back-edge (cycle)
// detection on the feasible subgraph of the CFG.
//
// The engine only ever accepts MORE than the path-enumeration filter it
// replaces (see the package-level soundness argument in DESIGN.md): edges
// it prunes are statically infeasible, reachability and joined register
// states over the remaining edges over-approximate every concrete
// execution, and every check the old filter applied per path is applied
// here to the join over all feasible paths.
package analysis

// Reason classifies why a bytestream was dropped (ReasonNone = accepted).
// The first eight values mirror the historical filter taxonomy so existing
// telemetry stays comparable; ReasonPathBudget is only ever produced by
// the legacy path-enumeration engine kept as a differential oracle
// (filter.Exhaustive), never by the fixpoint engine.
type Reason uint8

const (
	// ReasonNone: the bytestream was accepted.
	ReasonNone Reason = iota
	// ReasonForbidden: a forbidden instruction is reachable.
	ReasonForbidden
	// ReasonLoop: the feasible CFG contains a reachable cycle.
	ReasonLoop
	// ReasonOutOfBounds: control flow can leave the bytestream.
	ReasonOutOfBounds
	// ReasonDirtyAddress: a memory access uses a dirty base register.
	ReasonDirtyAddress
	// ReasonUnalignedImm: a memory access immediate is not size-aligned.
	ReasonUnalignedImm
	// ReasonStraddle: a 32-bit encoding straddles the bytestream end (its
	// upper half would come from the template, which the filter does not
	// model).
	ReasonStraddle
	// ReasonPathBudget: the legacy engine's path fork budget was exhausted
	// (conservative drop). The fixpoint engine never emits this.
	ReasonPathBudget
	// ReasonTooLong: the bytestream exceeds the configured maximum length
	// (the injection-area limit).
	ReasonTooLong

	// NumReasons sizes per-reason counter arrays.
	NumReasons
)

var reasonNames = [NumReasons]string{
	"accepted", "forbidden instruction", "potential loop", "control flow out of bounds",
	"dirty address register", "unaligned immediate", "straddling encoding",
	"path budget exhausted", "bytestream too long",
}

func (r Reason) String() string {
	if r < NumReasons {
		return reasonNames[r]
	}
	return "unknown"
}

// reasonSlugs are machine-friendly reason identifiers (metric label
// values, event fields); reasonNames stay the human-readable forms.
var reasonSlugs = [NumReasons]string{
	"accepted", "forbidden", "loop", "out_of_bounds",
	"dirty_address", "unaligned_imm", "straddle",
	"path_budget", "too_long",
}

// Slug returns a label-safe identifier for the reason.
func (r Reason) Slug() string {
	if r < NumReasons {
		return reasonSlugs[r]
	}
	return "unknown"
}
