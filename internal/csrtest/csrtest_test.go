package csrtest

import (
	"testing"

	"rvnegtest/internal/isa"
	"rvnegtest/internal/sim"
	"rvnegtest/internal/template"
)

func plat(cfg isa.Config) template.Platform {
	return template.Platform{Layout: template.DefaultLayout, Cfg: cfg}
}

func TestSuiteComposition(t *testing.T) {
	s := Suite(isa.RV32I)
	if len(s) < 7 {
		t.Fatalf("RV32I CSR suite: %d tests", len(s))
	}
	for _, tc := range s {
		if tc.Requires&CapFPU != 0 {
			t.Errorf("%s: FPU test in an RV32I suite", tc.Name)
		}
	}
	g := Suite(isa.RV32GC)
	if len(g) <= len(s) {
		t.Errorf("GC suite (%d) must extend the I suite (%d) with FP CSR tests", len(g), len(s))
	}
}

func TestCapabilitySelection(t *testing.T) {
	full := plat(isa.RV32GC)
	if Caps(full) != CapCounters|CapFPU {
		t.Errorf("full caps = %b", Caps(full))
	}
	hardwired := full
	hardwired.CountersHardwired = true
	if Caps(hardwired)&CapCounters != 0 {
		t.Error("hardwired platform must lack CapCounters")
	}
	tests := Suite(isa.RV32GC)
	sel := Select(tests, Caps(hardwired))
	if len(sel) >= len(tests) {
		t.Error("selection must drop counter tests")
	}
	for _, tc := range sel {
		if tc.Requires&CapCounters != 0 {
			t.Errorf("%s selected despite missing capability", tc.Name)
		}
	}
}

// TestAllPassOnFaithfulPlatform: on a platform with all capabilities,
// every CSR test passes against the reference for every simulator model
// (no CSR defects are seeded; the framework must not report phantom
// ones).
func TestAllPassOnFaithfulPlatform(t *testing.T) {
	tests := Suite(isa.RV32GC)
	for _, v := range sim.All {
		if !v.Supports(isa.RV32GC) {
			continue
		}
		results, err := Run(v, plat(isa.RV32GC), tests)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range results {
			if r.Skipped {
				t.Errorf("%s/%s skipped on a full-capability platform", v.Name, r.Test)
			}
			if r.Crashed || r.TimedOut || len(r.Mismatch) != 0 {
				t.Errorf("%s/%s: %+v", v.Name, r.Test, r)
			}
		}
	}
}

// TestSelectionPreventsSpuriousMismatches is the point of section VI
// direction 1: on a platform that legally hardwires its counters, the
// counter tests are skipped by selection — running them anyway (a
// selection-free harness) would report spurious mismatches.
func TestSelectionPreventsSpuriousMismatches(t *testing.T) {
	hardwired := plat(isa.RV32GC)
	hardwired.CountersHardwired = true
	tests := Suite(isa.RV32GC)

	// Proper flow: Run applies selection internally.
	results, err := Run(sim.Reference, hardwired, tests)
	if err != nil {
		t.Fatal(err)
	}
	skipped := 0
	for _, r := range results {
		if r.Skipped {
			skipped++
			continue
		}
		if len(r.Mismatch) != 0 || r.Crashed || r.TimedOut {
			t.Errorf("selected test %s failed on the hardwired platform: %+v", r.Test, r)
		}
	}
	if skipped == 0 {
		t.Fatal("no tests were skipped; selection inactive")
	}

	// Forcing the counter tests onto the hardwired platform produces the
	// spurious failures the selection exists to avoid. The comparison is
	// reference-on-full-platform vs reference-on-hardwired-platform —
	// both specification-compliant.
	refFull, err := sim.New(sim.Reference, plat(isa.RV32GC))
	if err != nil {
		t.Fatal(err)
	}
	refHard, err := sim.New(sim.Reference, hardwired)
	if err != nil {
		t.Fatal(err)
	}
	spurious := 0
	for _, tc := range tests {
		if tc.Requires&CapCounters == 0 {
			continue
		}
		a, b := refFull.Run(tc.Stream), refHard.Run(tc.Stream)
		for i := range a.Signature {
			if a.Signature[i] != b.Signature[i] {
				spurious++
				break
			}
		}
	}
	if spurious == 0 {
		t.Error("expected spurious mismatches when ignoring capabilities")
	}
}

func TestMinstretSemantics(t *testing.T) {
	// The increments test's semantic payload: x7 = minstret delta = 1.
	tests := Select(Suite(isa.RV32I), CapCounters)
	var incr *Test
	for i := range tests {
		if tests[i].Name == "minstret-increments" {
			incr = &tests[i]
		}
	}
	if incr == nil {
		t.Fatal("minstret-increments missing")
	}
	s, err := sim.New(sim.Reference, plat(isa.RV32I))
	if err != nil {
		t.Fatal(err)
	}
	out := s.Run(incr.Stream)
	if out.Signature[7] != 1 {
		t.Errorf("minstret delta = %d, want 1", out.Signature[7])
	}
	// On the hardwired platform the delta is 0 — legal, which is exactly
	// why the test carries the capability requirement.
	hp := plat(isa.RV32I)
	hp.CountersHardwired = true
	hs, err := sim.New(sim.Reference, hp)
	if err != nil {
		t.Fatal(err)
	}
	hout := hs.Run(incr.Stream)
	if hout.Signature[7] != 0 {
		t.Errorf("hardwired delta = %d, want 0", hout.Signature[7])
	}
}

func TestCoverageMetric(t *testing.T) {
	tests := Suite(isa.RV32GC)
	covered, total, detail := Coverage(tests, isa.RV32GC)
	if covered == 0 || total == 0 || covered > total {
		t.Fatalf("coverage %d/%d", covered, total)
	}
	for _, want := range []string{"mscratch/write", "mscratch/read", "mscratch/clear",
		"mepc/write", "minstret/read", "fcsr/write"} {
		if !detail[want] {
			t.Errorf("coverage point %s not exercised (have %v)", want, detail)
		}
	}
	// The I-configuration surface is smaller (no FP CSRs).
	_, totalI, _ := Coverage(Suite(isa.RV32I), isa.RV32I)
	if totalI >= total {
		t.Errorf("I surface (%d) must be smaller than GC surface (%d)", totalI, total)
	}
	t.Logf("CSR coverage: %d/%d points", covered, total)
}

func TestMcauseProvocation(t *testing.T) {
	// The mcause test provokes an illegal CSR write; the handler records
	// cause 2 in the signature.
	var mc *Test
	tests := Suite(isa.RV32I)
	for i := range tests {
		if tests[i].Name == "mcause-mtval-illegal" {
			mc = &tests[i]
		}
	}
	if mc == nil {
		t.Fatal("test missing")
	}
	s, err := sim.New(sim.Reference, plat(isa.RV32I))
	if err != nil {
		t.Fatal(err)
	}
	out := s.Run(mc.Stream)
	if out.Signature[30] != 2 {
		t.Errorf("mcause = %d, want 2", out.Signature[30])
	}
	if out.Signature[26] != template.XInit[26] {
		t.Error("trap path must bypass the completion marker")
	}
}
