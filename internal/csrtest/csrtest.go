// Package csrtest implements the paper's section VI proposal for closing
// the remaining compliance gap — the privileged architecture's CSRs:
//
//  1. very fine-grained tests per CSR, selected dynamically for each
//     tested platform based on its declared capabilities (a test that
//     assumes a working instruction counter is simply not run on a
//     platform that legally hardwires the counter to zero);
//  2. a coverage metric quantifying the CSR testing effort (which CSR ×
//     access-kind pairs the selected tests exercise);
//  3. don't-care companions to the reference signatures for the words that
//     remain conditionally architecture-specific.
//
// Tests are bytestreams in the regular compliance template (the body may
// use CSR instructions here: these are directed tests, not fuzzer output,
// so the bytestream filter — which exists to keep *random* inputs platform
// independent — does not apply).
package csrtest

import (
	"fmt"

	"rvnegtest/internal/hart"
	"rvnegtest/internal/isa"
	"rvnegtest/internal/sig"
	"rvnegtest/internal/sim"
	"rvnegtest/internal/template"
)

// Capability describes optional platform features a CSR test may depend
// on. A test runs only if the platform declares every capability the test
// requires — the "select them dynamically for each tested platform" of
// section VI.
type Capability uint32

const (
	// CapCounters: mcycle/minstret actually count (not hardwired to 0).
	CapCounters Capability = 1 << iota
	// CapFPU: floating-point CSRs exist (F or D configured).
	CapFPU
)

// Caps returns the capabilities of a platform under this repository's
// models.
func Caps(p template.Platform) Capability {
	var c Capability
	if !p.CountersHardwired {
		c |= CapCounters
	}
	if p.Cfg.HasFP() {
		c |= CapFPU
	}
	return c
}

// Test is one fine-grained CSR test.
type Test struct {
	Name     string
	CSR      uint16
	Requires Capability
	Stream   []byte
	// DontCare marks the signature words that remain architecture
	// specific even within the selected capability set.
	DontCare *sig.DontCare
}

// enc appends an instruction to a bytestream.
func bs(insts ...isa.Inst) []byte {
	var out []byte
	for _, inst := range insts {
		w := isa.MustEncode(inst)
		out = append(out, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	return out
}

// Suite builds the fine-grained machine-mode CSR tests applicable to an
// ISA configuration.
func Suite(cfg isa.Config) []Test {
	var tests []Test
	add := func(t Test) { tests = append(tests, t) }

	// mscratch: full 32-bit read/write roundtrip through all three access
	// forms. mscratch "can be used by the implementation at will" between
	// tests, but within one test the written value must read back.
	add(Test{
		Name: "mscratch-roundtrip", CSR: hart.CSRMscratch,
		Stream: bs(
			isa.Inst{Op: isa.OpCSRRW, Rd: 5, Rs1: 16, CSR: hart.CSRMscratch}, // write x16 pattern
			isa.Inst{Op: isa.OpCSRRS, Rd: 6, Rs1: 0, CSR: hart.CSRMscratch},  // read back
			isa.Inst{Op: isa.OpCSRRC, Rd: 7, Rs1: 10, CSR: hart.CSRMscratch}, // clear bits
			isa.Inst{Op: isa.OpCSRRS, Rd: 8, Rs1: 0, CSR: hart.CSRMscratch},
		),
		// The initial mscratch value (read into x5) is architecture
		// specific.
		DontCare: &sig.DontCare{Rules: []sig.Rule{{Word: 5, Kind: sig.CondAlways}}},
	})

	// mepc: the specification requires bit 0 to read as zero.
	add(Test{
		Name: "mepc-bit0-masked", CSR: hart.CSRMepc,
		Stream: bs(
			isa.Inst{Op: isa.OpCSRRW, Rd: 0, Rs1: 12, CSR: hart.CSRMepc}, // x12 = 3 (odd)
			isa.Inst{Op: isa.OpCSRRS, Rd: 5, Rs1: 0, CSR: hart.CSRMepc},
		),
	})

	// mtvec: the base must be write/readable; mtvec MAY be hardwired, so
	// the read-back word carries an if-zero... a hardwired mtvec reads as
	// the platform's value; compare only the low mode bits via a mask
	// rule (mode bit 1 is reserved and must read zero).
	add(Test{
		Name: "mtvec-mode-bits", CSR: hart.CSRMtvec,
		Stream: bs(
			isa.Inst{Op: isa.OpCSRRS, Rd: 5, Rs1: 0, CSR: hart.CSRMtvec},
		),
		// The handler address is platform specific; only bit 1 (reserved,
		// reads zero) is checked.
		DontCare: &sig.DontCare{Rules: []sig.Rule{{Word: 5, Kind: sig.CondMask, Mask: 0x2}}},
	})

	// misa: only MXL (RV32) is demanded; the extension bits are the
	// platform's own truth and excluded via mask.
	add(Test{
		Name: "misa-mxl", CSR: hart.CSRMisa,
		Stream: bs(
			isa.Inst{Op: isa.OpCSRRS, Rd: 5, Rs1: 0, CSR: hart.CSRMisa},
		),
		DontCare: &sig.DontCare{Rules: []sig.Rule{{Word: 5, Kind: sig.CondMask, Mask: 0xc0000000}}},
	})

	// mcause/mtval after a provoked illegal instruction: mcause must hold
	// the supported code; mtval may legally be zero (the paper's example
	// for conditional don't-care).
	add(Test{
		Name: "mcause-mtval-illegal", CSR: hart.CSRMcause,
		Stream: bs(
			// Provoke the trap by writing a read-only CSR; the trap
			// handler records mcause into the signature. (The template's
			// handler path bypasses the rest of the body.)
			isa.Inst{Op: isa.OpCSRRW, Rd: 0, Rs1: 5, CSR: hart.CSRMhartid},
		),
	})

	// minstret: the paper's own example of a specialized test — "check
	// that the counter increments when enabled but not care about the
	// exact architecture specific counter value". Two back-to-back reads;
	// the difference is the semantic payload, the absolute values are
	// don't-care.
	add(Test{
		Name: "minstret-increments", CSR: hart.CSRMinstret, Requires: CapCounters,
		Stream: bs(
			isa.Inst{Op: isa.OpCSRRS, Rd: 5, Rs1: 0, CSR: hart.CSRMinstret},
			isa.Inst{Op: isa.OpCSRRS, Rd: 6, Rs1: 0, CSR: hart.CSRMinstret},
			isa.Inst{Op: isa.OpSUB, Rd: 7, Rs1: 6, Rs2: 5}, // must be 1
		),
		DontCare: &sig.DontCare{Rules: []sig.Rule{
			{Word: 5, Kind: sig.CondAlways},
			{Word: 6, Kind: sig.CondAlways},
		}},
	})
	add(Test{
		Name: "mcycle-advances", CSR: hart.CSRMcycle, Requires: CapCounters,
		Stream: bs(
			isa.Inst{Op: isa.OpCSRRS, Rd: 5, Rs1: 0, CSR: hart.CSRMcycle},
			isa.Inst{Op: isa.OpCSRRS, Rd: 6, Rs1: 0, CSR: hart.CSRMcycle},
			isa.Inst{Op: isa.OpSLTU, Rd: 7, Rs1: 5, Rs2: 6}, // strictly increasing
		),
		DontCare: &sig.DontCare{Rules: []sig.Rule{
			{Word: 5, Kind: sig.CondAlways},
			{Word: 6, Kind: sig.CondAlways},
		}},
	})
	// Counter write access (the full-width counters are writable CSRs).
	add(Test{
		Name: "minstret-writable", CSR: hart.CSRMinstret, Requires: CapCounters,
		Stream: bs(
			isa.Inst{Op: isa.OpCSRRW, Rd: 0, Rs1: 1, CSR: hart.CSRMinstret}, // minstret = 1
			isa.Inst{Op: isa.OpCSRRS, Rd: 5, Rs1: 0, CSR: hart.CSRMinstret},
			isa.Inst{Op: isa.OpSLTIU, Rd: 6, Rs1: 5, Imm: 16}, // small again
		),
		DontCare: &sig.DontCare{Rules: []sig.Rule{{Word: 5, Kind: sig.CondAlways}}},
	})

	// mstatus: MIE set/clear roundtrip through the immediate forms.
	add(Test{
		Name: "mstatus-mie-toggle", CSR: hart.CSRMstatus,
		Stream: bs(
			isa.Inst{Op: isa.OpCSRRSI, Rd: 5, Imm: 8, CSR: hart.CSRMstatus}, // set MIE
			isa.Inst{Op: isa.OpCSRRS, Rd: 6, Rs1: 0, CSR: hart.CSRMstatus},
			isa.Inst{Op: isa.OpCSRRCI, Rd: 0, Imm: 8, CSR: hart.CSRMstatus}, // clear MIE
			isa.Inst{Op: isa.OpCSRRS, Rd: 7, Rs1: 0, CSR: hart.CSRMstatus},
		),
		// Other mstatus fields (FS, MPP defaults) are platform facts;
		// compare only the MIE bit.
		DontCare: &sig.DontCare{Rules: []sig.Rule{
			{Word: 5, Kind: sig.CondMask, Mask: 0x8},
			{Word: 6, Kind: sig.CondMask, Mask: 0x8},
			{Word: 7, Kind: sig.CondMask, Mask: 0x8},
		}},
	})

	// mie: set/clear of the machine interrupt enables; bits for absent
	// interrupt sources may legally be hardwired to zero (the paper's MIE
	// example), so compare under an if-zero rule.
	add(Test{
		Name: "mie-write-warl", CSR: hart.CSRMie,
		Stream: bs(
			isa.Inst{Op: isa.OpCSRRW, Rd: 0, Rs1: 2, CSR: hart.CSRMie}, // write all ones
			isa.Inst{Op: isa.OpCSRRS, Rd: 5, Rs1: 0, CSR: hart.CSRMie},
			isa.Inst{Op: isa.OpCSRRC, Rd: 0, Rs1: 2, CSR: hart.CSRMie}, // clear all
			isa.Inst{Op: isa.OpCSRRS, Rd: 6, Rs1: 0, CSR: hart.CSRMie},
		),
		// Which enable bits stick is platform specific; after clearing,
		// zero is demanded.
		DontCare: &sig.DontCare{Rules: []sig.Rule{{Word: 5, Kind: sig.CondAlways}}},
	})

	// mtval: writable scratch until the next trap; "it is also legal
	// behavior to simply set MTVAL to zero" — the paper's if-zero example.
	add(Test{
		Name: "mtval-write-ifzero", CSR: hart.CSRMtval,
		Stream: bs(
			isa.Inst{Op: isa.OpCSRRW, Rd: 0, Rs1: 15, CSR: hart.CSRMtval},
			isa.Inst{Op: isa.OpCSRRS, Rd: 5, Rs1: 0, CSR: hart.CSRMtval},
		),
		DontCare: &sig.DontCare{Rules: []sig.Rule{{Word: 5, Kind: sig.CondIfZero}}},
	})

	// mcause: holds written values between traps.
	add(Test{
		Name: "mcause-write", CSR: hart.CSRMcause,
		Stream: bs(
			isa.Inst{Op: isa.OpCSRRW, Rd: 0, Rs1: 26, CSR: hart.CSRMcause},
			isa.Inst{Op: isa.OpCSRRS, Rd: 5, Rs1: 0, CSR: hart.CSRMcause},
			isa.Inst{Op: isa.OpCSRRC, Rd: 0, Rs1: 26, CSR: hart.CSRMcause},
			isa.Inst{Op: isa.OpCSRRS, Rd: 6, Rs1: 0, CSR: hart.CSRMcause},
		),
	})

	// mepc set/clear forms complete its access-kind coverage.
	add(Test{
		Name: "mepc-set-clear", CSR: hart.CSRMepc,
		Stream: bs(
			isa.Inst{Op: isa.OpCSRRW, Rd: 0, Rs1: 0, CSR: hart.CSRMepc},
			isa.Inst{Op: isa.OpCSRRS, Rd: 0, Rs1: 14, CSR: hart.CSRMepc}, // set 0x20
			isa.Inst{Op: isa.OpCSRRS, Rd: 5, Rs1: 0, CSR: hart.CSRMepc},
			isa.Inst{Op: isa.OpCSRRC, Rd: 0, Rs1: 14, CSR: hart.CSRMepc},
			isa.Inst{Op: isa.OpCSRRS, Rd: 6, Rs1: 0, CSR: hart.CSRMepc},
		),
	})

	// mip: the pending bits are read-only views of interrupt sources;
	// reading must be legal, the value is the platform's.
	add(Test{
		Name: "mip-read", CSR: hart.CSRMip,
		Stream: bs(
			isa.Inst{Op: isa.OpCSRRS, Rd: 5, Rs1: 0, CSR: hart.CSRMip},
		),
		DontCare: &sig.DontCare{Rules: []sig.Rule{{Word: 5, Kind: sig.CondAlways}}},
	})

	// Identification CSRs: reads must succeed; values are by definition
	// architecture specific.
	for _, id := range []struct {
		name string
		addr uint16
	}{
		{"mvendorid-read", hart.CSRMvendorid},
		{"marchid-read", hart.CSRMarchid},
		{"mimpid-read", hart.CSRMimpid},
		{"mhartid-read", hart.CSRMhartid},
	} {
		add(Test{
			Name: id.name, CSR: id.addr,
			Stream: bs(
				isa.Inst{Op: isa.OpCSRRS, Rd: 5, Rs1: 0, CSR: id.addr},
			),
			DontCare: &sig.DontCare{Rules: []sig.Rule{{Word: 5, Kind: sig.CondAlways}}},
		})
	}

	// mstatus write form (csrrw) restoring the previous value afterwards.
	add(Test{
		Name: "mstatus-write-restore", CSR: hart.CSRMstatus,
		Stream: bs(
			isa.Inst{Op: isa.OpCSRRS, Rd: 5, Rs1: 0, CSR: hart.CSRMstatus}, // save
			isa.Inst{Op: isa.OpCSRRW, Rd: 6, Rs1: 5, CSR: hart.CSRMstatus}, // rewrite same
			isa.Inst{Op: isa.OpCSRRS, Rd: 7, Rs1: 0, CSR: hart.CSRMstatus}, // must equal x5
			isa.Inst{Op: isa.OpSUB, Rd: 8, Rs1: 7, Rs2: 5},                 // semantic: 0
		),
		DontCare: &sig.DontCare{Rules: []sig.Rule{
			{Word: 5, Kind: sig.CondAlways},
			{Word: 6, Kind: sig.CondAlways},
			{Word: 7, Kind: sig.CondAlways},
		}},
	})

	// mcycle write access (full-width counters are writable).
	add(Test{
		Name: "mcycle-writable", CSR: hart.CSRMcycle, Requires: CapCounters,
		Stream: bs(
			isa.Inst{Op: isa.OpCSRRW, Rd: 0, Rs1: 1, CSR: hart.CSRMcycle},
			isa.Inst{Op: isa.OpCSRRS, Rd: 5, Rs1: 0, CSR: hart.CSRMcycle},
			isa.Inst{Op: isa.OpSLTIU, Rd: 6, Rs1: 5, Imm: 64},
		),
		DontCare: &sig.DontCare{Rules: []sig.Rule{{Word: 5, Kind: sig.CondAlways}}},
	})

	// misa write-ignored (WARL): writing garbage must not corrupt MXL.
	add(Test{
		Name: "misa-warl-write", CSR: hart.CSRMisa,
		Stream: bs(
			isa.Inst{Op: isa.OpCSRRW, Rd: 0, Rs1: 16, CSR: hart.CSRMisa},
			isa.Inst{Op: isa.OpCSRRS, Rd: 5, Rs1: 0, CSR: hart.CSRMisa},
		),
		DontCare: &sig.DontCare{Rules: []sig.Rule{{Word: 5, Kind: sig.CondMask, Mask: 0xc0000000}}},
	})

	if cfg.HasFP() {
		// fcsr decomposes into frm/fflags; roundtrips through all views.
		add(Test{
			Name: "fcsr-decompose", CSR: hart.CSRFcsr, Requires: CapFPU,
			Stream: bs(
				isa.Inst{Op: isa.OpCSRRWI, Rd: 0, Imm: 0x1f, CSR: hart.CSRFcsr}, // fflags all set... zimm is 5 bits
				isa.Inst{Op: isa.OpCSRRS, Rd: 5, Rs1: 0, CSR: 0x001},            // fflags
				isa.Inst{Op: isa.OpCSRRWI, Rd: 0, Imm: 3, CSR: 0x002},           // frm = 3
				isa.Inst{Op: isa.OpCSRRS, Rd: 6, Rs1: 0, CSR: hart.CSRFcsr},     // fcsr = 3<<5 | 0x1f
			),
		})
		add(Test{
			Name: "fflags-accrual", CSR: 0x001, Requires: CapFPU,
			Stream: bs(
				isa.Inst{Op: isa.OpCSRRWI, Rd: 0, Imm: 0, CSR: hart.CSRFcsr},
				// 1.0 / 0.0 -> +inf, DZ flag.
				isa.Inst{Op: isa.OpFDIVS, Rd: 2, Rs1: 1, Rs2: 0, RM: 0},
				isa.Inst{Op: isa.OpCSRRS, Rd: 5, Rs1: 0, CSR: 0x001},
			),
		})
	}
	return tests
}

// Select filters a suite to the tests a platform's capabilities support —
// section VI direction 1.
func Select(tests []Test, caps Capability) []Test {
	var out []Test
	for _, t := range tests {
		if t.Requires&^caps == 0 {
			out = append(out, t)
		}
	}
	return out
}

// AccessKind classifies CSR accesses for the coverage metric.
type AccessKind uint8

const (
	AccessRead AccessKind = iota
	AccessWrite
	AccessSet
	AccessClear
	accessKinds
)

// Coverage computes the CSR coverage metric of section VI direction 2:
// which (CSR, access kind) pairs the given tests exercise, out of the
// machine-mode CSR surface of the configuration.
func Coverage(tests []Test, cfg isa.Config) (covered, total int, detail map[string]bool) {
	// The CSR surface under test: machine-mode CSRs plus FP CSRs when
	// configured. Read-only CSRs count only their read point.
	type csrDesc struct {
		addr     uint16
		readOnly bool
	}
	surface := []csrDesc{
		{hart.CSRMstatus, false}, {hart.CSRMisa, false}, {hart.CSRMie, false},
		{hart.CSRMtvec, false}, {hart.CSRMscratch, false}, {hart.CSRMepc, false},
		{hart.CSRMcause, false}, {hart.CSRMtval, false}, {hart.CSRMip, false},
		{hart.CSRMcycle, false}, {hart.CSRMinstret, false},
		{hart.CSRMvendorid, true}, {hart.CSRMarchid, true}, {hart.CSRMimpid, true},
		{hart.CSRMhartid, true},
	}
	if cfg.HasFP() {
		surface = append(surface, csrDesc{0x001, false}, csrDesc{0x002, false}, csrDesc{hart.CSRFcsr, false})
	}
	for _, d := range surface {
		if d.readOnly {
			total++
		} else {
			total += int(accessKinds)
		}
	}

	detail = map[string]bool{}
	mark := func(addr uint16, k AccessKind) {
		key := fmt.Sprintf("%s/%s", isa.CSRName(addr), [...]string{"read", "write", "set", "clear"}[k])
		if !detail[key] {
			detail[key] = true
		}
	}
	for _, t := range tests {
		for pc := 0; pc+4 <= len(t.Stream); pc += 4 {
			w := uint32(t.Stream[pc]) | uint32(t.Stream[pc+1])<<8 | uint32(t.Stream[pc+2])<<16 | uint32(t.Stream[pc+3])<<24
			inst := isa.Ref.Decode32(w)
			if !inst.Op.Flags().Is(isa.FlagCSR) {
				continue
			}
			if inst.Rd != 0 {
				mark(inst.CSR, AccessRead)
			}
			switch inst.Op {
			case isa.OpCSRRW, isa.OpCSRRWI:
				mark(inst.CSR, AccessWrite)
				if inst.Rd != 0 {
					mark(inst.CSR, AccessRead)
				}
			case isa.OpCSRRS, isa.OpCSRRSI:
				mark(inst.CSR, AccessRead)
				if inst.Rs1 != 0 || (inst.Op == isa.OpCSRRSI && inst.Imm != 0) {
					mark(inst.CSR, AccessSet)
				}
			case isa.OpCSRRC, isa.OpCSRRCI:
				mark(inst.CSR, AccessRead)
				if inst.Rs1 != 0 || (inst.Op == isa.OpCSRRCI && inst.Imm != 0) {
					mark(inst.CSR, AccessClear)
				}
			}
		}
	}
	// Count only points that belong to the declared surface.
	for _, d := range surface {
		name := isa.CSRName(d.addr)
		kinds := []string{"read"}
		if !d.readOnly {
			kinds = []string{"read", "write", "set", "clear"}
		}
		for _, k := range kinds {
			if detail[name+"/"+k] {
				covered++
			}
		}
	}
	return covered, total, detail
}

// Result is one CSR test outcome on one simulator.
type Result struct {
	Test     string
	Skipped  bool // platform lacks a required capability
	Mismatch []int
	Crashed  bool
	TimedOut bool
}

// Run executes the capability-selected tests on a simulator-under-test,
// comparing against the reference model on the same platform with the
// per-test don't-care rules applied.
func Run(v *sim.Variant, p template.Platform, tests []Test) ([]Result, error) {
	caps := Caps(p)
	refSim, err := sim.New(sim.Reference, p)
	if err != nil {
		return nil, err
	}
	sut, err := sim.New(v, p)
	if err != nil {
		return nil, err
	}
	var out []Result
	for _, t := range tests {
		if t.Requires&^caps != 0 {
			out = append(out, Result{Test: t.Name, Skipped: true})
			continue
		}
		ref := refSim.Run(t.Stream)
		got := sut.Run(t.Stream)
		r := Result{Test: t.Name, Crashed: got.Crashed, TimedOut: got.TimedOut}
		if !got.Crashed && !got.TimedOut && !ref.Crashed && !ref.TimedOut {
			r.Mismatch = sig.Compare(ref.Signature, got.Signature, t.DontCare)
		}
		out = append(out, r)
	}
	return out, nil
}
