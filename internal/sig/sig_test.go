package sig

import (
	"testing"
	"testing/quick"
)

func TestFormatParseRoundtrip(t *testing.T) {
	f := func(words []uint32) bool {
		s := Signature(words)
		back, err := Parse(s.String())
		if err != nil {
			return false
		}
		return Equal(s, back) || (len(words) == 0 && len(back) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFormat(t *testing.T) {
	s := Signature{0xdeadbeef, 0x00000001}
	if s.String() != "deadbeef\n00000001\n" {
		t.Errorf("format = %q", s.String())
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"zz", "123", "123456789", "1234567g"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) must fail", bad)
		}
	}
	// Uppercase and blank lines are accepted.
	s, err := Parse("DEADBEEF\n\n00000002\n")
	if err != nil || len(s) != 2 || s[0] != 0xdeadbeef {
		t.Errorf("lenient parse: %v %v", s, err)
	}
}

func TestEqualAndDiff(t *testing.T) {
	a := Signature{1, 2, 3}
	b := Signature{1, 9, 3}
	if Equal(a, b) || !Equal(a, a) {
		t.Error("Equal wrong")
	}
	if d := Diff(a, b); len(d) != 1 || d[0] != 1 {
		t.Errorf("Diff = %v", d)
	}
	if d := Diff(a, a[:2]); len(d) != 1 || d[0] != 2 {
		t.Errorf("length diff = %v", d)
	}
	if Equal(a, a[:2]) {
		t.Error("length-unequal must not be equal")
	}
}

func TestCompareWithDontCare(t *testing.T) {
	ref := Signature{10, 20, 30}
	got := Signature{10, 99, 30}
	if d := Compare(ref, got, nil); len(d) != 1 || d[0] != 1 {
		t.Fatalf("no rules: %v", d)
	}
	dc := &DontCare{Rules: []Rule{{Word: 1, Kind: CondAlways}}}
	if d := Compare(ref, got, dc); len(d) != 0 {
		t.Errorf("always rule: %v", d)
	}
	// IfZero: ignored only when the output is zero (the MTVAL case).
	dc = &DontCare{Rules: []Rule{{Word: 1, Kind: CondIfZero}}}
	if d := Compare(ref, Signature{10, 0, 30}, dc); len(d) != 0 {
		t.Errorf("ifzero with zero output: %v", d)
	}
	if d := Compare(ref, got, dc); len(d) != 1 {
		t.Errorf("ifzero with nonzero output: %v", d)
	}
	// Mask: only selected bits compared.
	dc = &DontCare{Rules: []Rule{{Word: 1, Kind: CondMask, Mask: 0xff00}}}
	if d := Compare(Signature{0, 0x1234, 0}, Signature{0, 0x12ff, 0}, dc); len(d) != 0 {
		t.Errorf("mask match: %v", d)
	}
	if d := Compare(Signature{0, 0x1234, 0}, Signature{0, 0x22ff, 0}, dc); len(d) != 1 {
		t.Errorf("mask mismatch: %v", d)
	}
}

func TestDontCareSerialization(t *testing.T) {
	d := &DontCare{Rules: []Rule{
		{Word: 30, Kind: CondIfZero},
		{Word: 5, Kind: CondAlways},
		{Word: 7, Kind: CondMask, Mask: 0xffff0000},
	}}
	text := d.Format()
	back, err := ParseDontCare(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rules) != 3 {
		t.Fatalf("rules = %d", len(back.Rules))
	}
	for i, r := range back.Rules {
		if r != d.Rules[i] {
			t.Errorf("rule %d: %+v != %+v", i, r, d.Rules[i])
		}
	}
	for _, bad := range []string{"x always", "1", "1 frobnicate", "1 mask", "1 mask zz"} {
		if _, err := ParseDontCare(bad); err == nil {
			t.Errorf("ParseDontCare(%q) must fail", bad)
		}
	}
	if d, err := ParseDontCare("# comment\n\n3 always\n"); err != nil || len(d.Rules) != 1 {
		t.Errorf("lenient parse: %v %v", d, err)
	}
}
