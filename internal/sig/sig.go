// Package sig handles compliance-test signatures: the in-memory register
// dump a test case produces, serialized in the official compliance format
// (one 32-bit word per line, lowercase hex), compared word-for-word
// against a reference. It also implements the paper's proposed extension
// (section VI, direction 3): a don't-care mask stored alongside the
// reference that conditionally excludes words from the comparison.
package sig

import (
	"fmt"
	"strings"
)

// Signature is an ordered sequence of 32-bit signature words.
type Signature []uint32

// String renders the official compliance-signature format.
func (s Signature) String() string {
	var b strings.Builder
	for _, w := range s {
		fmt.Fprintf(&b, "%08x\n", w)
	}
	return b.String()
}

// Parse reads a signature in the compliance format.
func Parse(text string) (Signature, error) {
	var out Signature
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if len(line) != 8 {
			return nil, fmt.Errorf("sig: line %d: want 8 hex digits, got %q", i+1, line)
		}
		var w uint32
		for _, c := range line {
			var d uint32
			switch {
			case c >= '0' && c <= '9':
				d = uint32(c - '0')
			case c >= 'a' && c <= 'f':
				d = uint32(c-'a') + 10
			case c >= 'A' && c <= 'F':
				d = uint32(c-'A') + 10
			default:
				return nil, fmt.Errorf("sig: line %d: bad hex digit %q", i+1, c)
			}
			w = w<<4 | d
		}
		out = append(out, w)
	}
	return out, nil
}

// Equal compares two signatures exactly.
func Equal(a, b Signature) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Diff returns the indexes of differing words (including a length
// difference, reported as index min(len)).
func Diff(a, b Signature) []int {
	var out []int
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			out = append(out, i)
		}
	}
	if len(a) != len(b) {
		out = append(out, n)
	}
	return out
}

// Cond is a don't-care condition kind.
type Cond uint8

const (
	// CondAlways: the word is never compared (fully architecture
	// specific, e.g. a cycle counter).
	CondAlways Cond = iota
	// CondIfZero: the word is ignored when the test output is zero (the
	// paper's MTVAL example: implementations may legally report zero).
	CondIfZero
	// CondMask: only the bits set in Mask are compared.
	CondMask
)

// Rule is one don't-care entry.
type Rule struct {
	Word int
	Kind Cond
	Mask uint32 // for CondMask
}

// DontCare is the optional companion of a reference signature.
type DontCare struct {
	Rules []Rule
}

// rule looks up the rule for a word index.
func (d *DontCare) rule(word int) (Rule, bool) {
	if d == nil {
		return Rule{}, false
	}
	for _, r := range d.Rules {
		if r.Word == word {
			return r, true
		}
	}
	return Rule{}, false
}

// Compare checks a test output against a reference under the don't-care
// rules, returning the indexes of real mismatches.
func Compare(ref, got Signature, dc *DontCare) []int {
	var out []int
	n := min(len(ref), len(got))
	for i := 0; i < n; i++ {
		if ref[i] == got[i] {
			continue
		}
		if r, ok := dc.rule(i); ok {
			switch r.Kind {
			case CondAlways:
				continue
			case CondIfZero:
				if got[i] == 0 {
					continue
				}
			case CondMask:
				if ref[i]&r.Mask == got[i]&r.Mask {
					continue
				}
			}
		}
		out = append(out, i)
	}
	if len(ref) != len(got) {
		out = append(out, n)
	}
	return out
}

// Format serializes a don't-care file: "word kind [mask]" per line.
func (d *DontCare) Format() string {
	var b strings.Builder
	for _, r := range d.Rules {
		switch r.Kind {
		case CondAlways:
			fmt.Fprintf(&b, "%d always\n", r.Word)
		case CondIfZero:
			fmt.Fprintf(&b, "%d ifzero\n", r.Word)
		case CondMask:
			fmt.Fprintf(&b, "%d mask %08x\n", r.Word, r.Mask)
		}
	}
	return b.String()
}

// ParseDontCare reads the Format serialization.
func ParseDontCare(text string) (*DontCare, error) {
	d := &DontCare{}
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var r Rule
		var kind string
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("sig: dontcare line %d: malformed", i+1)
		}
		if _, err := fmt.Sscanf(fields[0], "%d", &r.Word); err != nil {
			return nil, fmt.Errorf("sig: dontcare line %d: bad word index", i+1)
		}
		kind = fields[1]
		switch kind {
		case "always":
			r.Kind = CondAlways
		case "ifzero":
			r.Kind = CondIfZero
		case "mask":
			r.Kind = CondMask
			if len(fields) != 3 {
				return nil, fmt.Errorf("sig: dontcare line %d: mask needs a value", i+1)
			}
			if _, err := fmt.Sscanf(fields[2], "%x", &r.Mask); err != nil {
				return nil, fmt.Errorf("sig: dontcare line %d: bad mask", i+1)
			}
		default:
			return nil, fmt.Errorf("sig: dontcare line %d: unknown kind %q", i+1, kind)
		}
		d.Rules = append(d.Rules, r)
	}
	return d, nil
}
