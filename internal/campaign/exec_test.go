package campaign

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func fuzzSpec(workers int) JobSpec {
	return JobSpec{
		Kind:            KindFuzz,
		Seed:            3,
		Execs:           4000,
		Workers:         workers,
		CheckpointEvery: 2000,
	}
}

func complianceSpec(workers int) JobSpec {
	return JobSpec{
		Kind:    KindCompliance,
		Suite:   "user",
		Seed:    5,
		Execs:   1500,
		Workers: workers,
		Sims:    []string{"Spike", "VP"},
		ISAs:    []string{"RV32I"},
	}
}

// readArtifacts loads every artifact file under dir by name.
func readArtifacts(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading artifacts dir: %v", err)
	}
	out := map[string][]byte{}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = raw
	}
	return out
}

// directArtifacts runs the spec the way a CLI-with-checkpoint invocation
// would — Execute on the calling goroutine — and writes its artifacts.
func directArtifacts(t *testing.T, spec JobSpec) map[string][]byte {
	t.Helper()
	dir := t.TempDir()
	res, err := Execute(context.Background(), spec, Env{CheckpointDir: filepath.Join(dir, "ck")})
	if err != nil {
		t.Fatalf("direct execute: %v", err)
	}
	adir := filepath.Join(dir, "artifacts")
	if err := res.WriteArtifacts(adir); err != nil {
		t.Fatal(err)
	}
	return readArtifacts(t, adir)
}

// daemonArtifacts runs the spec through the persistent store + scheduler
// (the daemon path) and returns the finished job's artifacts.
func daemonArtifacts(t *testing.T, spec JobSpec) (map[string][]byte, *Job) {
	t.Helper()
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(st, SchedulerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Close()
	job, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	final, err := s.Wait(ctx, job.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.State != StateDone {
		t.Fatalf("job finished %s (error %q), want done", final.State, final.Error)
	}
	return readArtifacts(t, st.ArtifactsDir(job.ID)), final
}

func compareArtifacts(t *testing.T, want, got map[string][]byte) {
	t.Helper()
	if len(want) == 0 {
		t.Fatal("no artifacts to compare")
	}
	if len(got) != len(want) {
		t.Fatalf("artifact sets differ: want %d files, got %d", len(want), len(got))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Fatalf("artifact %s missing", name)
		}
		if string(g) != string(w) {
			t.Fatalf("artifact %s differs (%d vs %d bytes)", name, len(w), len(g))
		}
	}
}

// TestDaemonFuzzParity is the determinism invariant for fuzz jobs: a job
// executed by the daemon scheduler produces byte-identical artifacts to
// the equivalent direct (CLI-with-checkpoint) invocation, across worker
// counts.
func TestDaemonFuzzParity(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		spec := fuzzSpec(workers)
		want := directArtifacts(t, spec)
		got, _ := daemonArtifacts(t, spec)
		compareArtifacts(t, want, got)
		if _, ok := got[ArtifactSuite]; !ok {
			t.Fatal("fuzz job produced no suite artifact")
		}
		if _, ok := got[ArtifactFuzzStats]; !ok {
			t.Fatal("fuzz job produced no stats artifact")
		}
	}
}

// TestDaemonComplianceParity is the same invariant for compliance jobs:
// generated suite, engine run and rendered/JSON reports are identical no
// matter who drove the execution.
func TestDaemonComplianceParity(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		spec := complianceSpec(workers)
		want := directArtifacts(t, spec)
		got, _ := daemonArtifacts(t, spec)
		compareArtifacts(t, want, got)
		if _, ok := got[ArtifactReport]; !ok {
			t.Fatal("compliance job produced no report artifact")
		}
	}
}

// TestSchedulerSuspendResumeParity closes the scheduler mid-job (the
// graceful-shutdown path), reopens the store with a fresh scheduler, and
// verifies the resumed job's artifacts are byte-identical to an
// uninterrupted direct run.
func TestSchedulerSuspendResumeParity(t *testing.T) {
	spec := fuzzSpec(2)
	spec.Execs = 60000
	spec.CheckpointEvery = 3000
	want := directArtifacts(t, spec)

	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(st, SchedulerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	job, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, s, job.ID, StateRunning)
	time.Sleep(150 * time.Millisecond) // let it get past a checkpoint
	s.Close()

	onDisk, err := st.Get(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	switch onDisk.State {
	case StateQueued:
		if onDisk.Resumes == 0 {
			t.Fatal("suspended job did not count a resume")
		}
	case StateDone:
		t.Log("job completed before shutdown; parity still checked")
	default:
		t.Fatalf("after close, job is %s, want queued or done", onDisk.State)
	}

	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(st2, SchedulerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s2.Start()
	defer s2.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	final, err := s2.Wait(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("resumed job finished %s (error %q), want done", final.State, final.Error)
	}
	compareArtifacts(t, want, readArtifacts(t, st2.ArtifactsDir(job.ID)))
}

// TestOpenRecoversKilledRunningJob simulates kill -9: job.json says
// "running" but no scheduler owns it. Open must walk it back to queued
// with a counted resume.
func TestOpenRecoversKilledRunningJob(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	job, err := st.NewJob(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := job.transition(StateRunning); err != nil {
		t.Fatal(err)
	}
	job.StartedNS = 42
	if err := st.Put(job); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(st2, SchedulerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got, err := s.Get(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateQueued || got.Resumes != 1 || got.StartedNS != 0 {
		t.Fatalf("recovered job = state %s, resumes %d, started %d; want queued/1/0",
			got.State, got.Resumes, got.StartedNS)
	}
	onDisk, err := st2.Get(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if onDisk.State != StateQueued {
		t.Fatalf("recovery not persisted: disk state %s", onDisk.State)
	}
}

func waitForState(t *testing.T, s *Scheduler, id string, want State) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		job, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if job.State == want || job.State.Terminal() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
}

func TestCancelQueuedJob(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(st, SchedulerConfig{}) // never started: job stays queued
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	job, err := s.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(job.ID); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get(job.ID)
	if got.State != StateCanceled {
		t.Fatalf("state %s, want canceled", got.State)
	}
	if err := s.Cancel(job.ID); !errors.Is(err, ErrJobTerminal) {
		t.Fatalf("second cancel = %v, want ErrJobTerminal", err)
	}
}

func TestCancelRunningJob(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(st, SchedulerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Close()
	spec := fuzzSpec(1)
	spec.Execs = 2000000 // long enough that cancel lands mid-run
	spec.CheckpointEvery = 2000
	job, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, s, job.ID, StateRunning)
	if err := s.Cancel(job.ID); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	final, err := s.Wait(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCanceled {
		t.Fatalf("state %s, want canceled", final.State)
	}
}

func TestSubmitRejectsInvalidSpec(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(st, SchedulerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	bad := []JobSpec{
		{Kind: "bogus"},
		{Kind: KindFuzz}, // no execs budget
		{Kind: KindFuzz, Execs: 10, Cov: "v9"},
		{Kind: KindCompliance, Execs: 10, Sims: []string{"NoSuchSim"}},
		{Kind: KindCompliance}, // no suite, no budget
	}
	for i, spec := range bad {
		if _, err := s.Submit(spec); !errors.Is(err, ErrInvalidSpec) {
			t.Errorf("bad spec %d: err = %v, want ErrInvalidSpec", i, err)
		}
	}
	if jobs := s.Jobs(); len(jobs) != 0 {
		t.Fatalf("rejected submissions persisted %d jobs", len(jobs))
	}
}

func TestExecuteSpecGuards(t *testing.T) {
	// A wall budget cannot be combined with checkpointing.
	_, err := Execute(context.Background(), fuzzSpec(1),
		Env{CheckpointDir: t.TempDir(), WallBudget: time.Second})
	if !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("wall budget + checkpoint: %v, want ErrInvalidSpec", err)
	}
	// Campaign mode needs an execs budget.
	spec := fuzzSpec(2)
	spec.Execs = 0
	if _, err := Execute(context.Background(), spec, Env{}); !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("campaign without budget: %v, want ErrInvalidSpec", err)
	}
	// Compliance generation needs some budget.
	cs := complianceSpec(1)
	cs.Execs = 0
	if _, err := Execute(context.Background(), cs, Env{}); !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("compliance without budget: %v, want ErrInvalidSpec", err)
	}
}
