package campaign

import "fmt"

// State is a job's position in the campaign lifecycle:
//
//	queued ──────────────► running ──► checkpointing ──► done
//	   │                      │              │      ├──► degraded
//	   ▼                      ▼              │      ├──► failed
//	canceled ◄─────────── canceled ◄─────────┤      └──► canceled
//	                                         │
//	              queued ◄───────────────────┘  (suspended; resumes later)
//
// Checkpointing is the transient barrier every running job passes through
// on the way out: the scheduler flushes the engine's final checkpoint and
// the job's artifacts there, so whatever terminal (or suspended) state
// follows is backed by durable files. A daemon killed outright (kill -9)
// leaves jobs in running; startup recovery walks them through
// checkpointing back to queued, from where they resume off their last
// on-disk checkpoint.
type State string

const (
	// StateQueued: accepted, waiting for a scheduler slot (or suspended
	// after a daemon shutdown, holding a resume checkpoint).
	StateQueued State = "queued"
	// StateRunning: executing on a scheduler slot.
	StateRunning State = "running"
	// StateCheckpointing: leaving the slot; final checkpoint and
	// artifacts are being persisted.
	StateCheckpointing State = "checkpointing"
	// StateDone: completed with clean results.
	StateDone State = "done"
	// StateDegraded: completed, but some results carry harness faults
	// (quarantined inputs, unhealthy simulators, skipped adapter cells)
	// — the campaign-level analogue of the CLIs' exit status 2.
	StateDegraded State = "degraded"
	// StateFailed: aborted on an error; no usable results.
	StateFailed State = "failed"
	// StateCanceled: stopped on operator request.
	StateCanceled State = "canceled"
)

// Terminal reports whether a job in this state will never run again.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateDegraded, StateFailed, StateCanceled:
		return true
	}
	return false
}

// Valid reports whether s is one of the defined states.
func (s State) Valid() bool {
	switch s {
	case StateQueued, StateRunning, StateCheckpointing,
		StateDone, StateDegraded, StateFailed, StateCanceled:
		return true
	}
	return false
}

// transitions is the edge set of the lifecycle machine. Every state
// change in the scheduler and the store flows through Job.transition,
// which consults this table — an illegal hop is a bug, not a new
// behaviour.
var transitions = map[State][]State{
	StateQueued:  {StateRunning, StateCanceled},
	StateRunning: {StateCheckpointing, StateFailed, StateCanceled},
	StateCheckpointing: {
		StateDone, StateDegraded, StateFailed, StateCanceled,
		StateQueued, // suspended: daemon shutdown or startup recovery
	},
}

// canTransition reports whether from → to is a legal lifecycle edge.
func canTransition(from, to State) bool {
	for _, t := range transitions[from] {
		if t == to {
			return true
		}
	}
	return false
}

// transition moves the job to a new state, enforcing the lifecycle
// machine.
func (j *Job) transition(to State) error {
	if !canTransition(j.State, to) {
		return fmt.Errorf("campaign: job %s: illegal transition %s → %s", j.ID, j.State, to)
	}
	j.State = to
	return nil
}
