package campaign

import (
	"flag"
	"fmt"
	"os"

	"rvnegtest/internal/obs"
)

// Flags is the shared campaign flag surface of rvfuzz and rvcompliance:
// checkpoint/resume, quarantine, case timeout, workers, batch, predecode
// ablation, telemetry address and events file. Registering them through
// one helper keeps the two CLIs from drifting apart again — the flag
// names, defaults and help text live here once.
type Flags struct {
	Checkpoint    string
	Resume        string
	Quarantine    string
	CaseTimeout   float64
	Workers       int
	Batch         int
	NoPredecode   bool
	TelemetryAddr string
	Events        string
}

// Register installs the shared campaign flags on fs. The worker default
// and help text differ per CLI (rvfuzz: independent fuzzers shaping the
// corpus; rvcompliance: engine shards that never change the report), so
// they are parameters.
func (f *Flags) Register(fs *flag.FlagSet, workersDefault int, workersUsage string) {
	fs.StringVar(&f.Checkpoint, "checkpoint", "", "checkpoint campaign state under this directory (enables resume)")
	fs.StringVar(&f.Resume, "resume", "", "resume a checkpointed campaign from this directory")
	fs.StringVar(&f.Quarantine, "quarantine", "", "save inputs that trigger harness faults into this directory")
	fs.Float64Var(&f.CaseTimeout, "case-timeout", 0, "per-case wall-clock watchdog in seconds (0 disables)")
	fs.IntVar(&f.Workers, "workers", workersDefault, workersUsage)
	fs.IntVar(&f.Batch, "batch", 0, "run in-process simulator lanes in batched lockstep, N lanes per worker (artifacts are identical either way; 0 disables)")
	fs.BoolVar(&f.NoPredecode, "no-predecode", false, "ablation: disable the predecoded execution core (artifacts are identical either way)")
	fs.StringVar(&f.TelemetryAddr, "telemetry-addr", "", "serve live telemetry on this address: Prometheus-text /metrics, /debug/vars, net/http/pprof")
	fs.StringVar(&f.Events, "events", "", "write campaign lifecycle events as NDJSON to this file (render with rvreport -events)")
}

// CheckpointDir reconciles -checkpoint and -resume into the effective
// checkpoint directory, validating that a resume names an existing
// checkpoint via hasCheckpoint.
func (f *Flags) CheckpointDir(hasCheckpoint func(dir string) bool) (string, error) {
	dir := f.Checkpoint
	if f.Resume != "" {
		if dir != "" && dir != f.Resume {
			return "", fmt.Errorf("-checkpoint and -resume name different directories")
		}
		dir = f.Resume
		if !hasCheckpoint(dir) {
			return "", fmt.Errorf("no checkpoint found under %s", dir)
		}
	}
	return dir, nil
}

// Telemetry is the CLI-side telemetry bundle opened from the shared
// flags: the optional live-metrics server and NDJSON event stream.
type Telemetry struct {
	// Registry is non-nil when a telemetry address was given.
	Registry *obs.Registry
	// Events is non-nil when an events file was given.
	Events *obs.EventLog

	prog    string
	srv     *obs.Server
	closers []func()
}

// OpenTelemetry wires -telemetry-addr and -events. prog names the CLI
// for the stderr notice and error prefixes. Close flushes the event file
// and shuts the server down; it is safe to call more than once (needed
// because os.Exit paths skip deferred calls).
func (f *Flags) OpenTelemetry(prog string) (*Telemetry, error) {
	t := &Telemetry{prog: prog}
	if f.TelemetryAddr != "" {
		t.Registry = obs.NewRegistry()
		srv, err := obs.Serve(f.TelemetryAddr, t.Registry)
		if err != nil {
			return nil, fmt.Errorf("telemetry server: %w", err)
		}
		fmt.Fprintf(os.Stderr, "%s: telemetry at http://%s/metrics (also /debug/vars, /debug/pprof/)\n", prog, srv.Addr)
		t.srv = srv
		t.closers = append(t.closers, func() { srv.Close() })
	}
	if f.Events != "" {
		events, err := obs.CreateEventLog(f.Events)
		if err != nil {
			return nil, fmt.Errorf("events file: %w", err)
		}
		t.Events = events
		t.closers = append(t.closers, func() {
			if err := events.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "%s: closing events file: %v\n", prog, err)
			}
		})
	}
	return t, nil
}

// Close flushes and shuts down whatever OpenTelemetry opened.
// Idempotent.
func (t *Telemetry) Close() {
	if t == nil {
		return
	}
	for _, c := range t.closers {
		c()
	}
	t.closers = nil
}

// Env assembles the execution environment from the shared flags plus the
// resolved checkpoint directory and opened telemetry.
func (f *Flags) Env(checkpointDir string, t *Telemetry) Env {
	return Env{
		CheckpointDir: checkpointDir,
		QuarantineDir: f.Quarantine,
		Obs:           t.Registry,
		Events:        t.Events,
	}
}

// Apply copies the shared flag values onto a job spec (the CLI-specific
// flags are applied by each main).
func (f *Flags) Apply(spec *JobSpec) {
	spec.Workers = f.Workers
	spec.Batch = f.Batch
	spec.CaseTimeoutSec = f.CaseTimeout
	spec.DisablePredecode = f.NoPredecode
}
