package campaign

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"rvnegtest/internal/obs"
)

// ErrJobTerminal reports a lifecycle operation on a job that already
// reached a terminal state.
var ErrJobTerminal = errors.New("campaign: job already terminal")

// ErrSchedulerClosed reports an operation on a closed scheduler.
var ErrSchedulerClosed = errors.New("campaign: scheduler closed")

// SchedulerConfig shapes a scheduler around a job store.
type SchedulerConfig struct {
	// Slots is the number of jobs running concurrently (each job may
	// itself use multiple engine workers); values below 1 mean 1.
	Slots int
	// Obs, when non-nil, receives scheduler counters plus one child
	// registry per job (the daemon's /metrics aggregates them live).
	Obs *obs.Registry
	// Events, when non-nil, receives job lifecycle events and every
	// engine event, each stamped with its job ID.
	Events *obs.EventLog
}

// Scheduler runs jobs from a Store across a local worker pool. It owns
// the store after Open: all mutations flow through the scheduler's
// mutex, every state change is persisted before it is visible through
// the API, and jobs interrupted by daemon shutdown (graceful or kill
// -9) are recovered into the queue on the next Open — resuming from
// their engine checkpoints, which is what makes a daemon-executed job
// byte-identical to an uninterrupted one.
type Scheduler struct {
	store  *Store
	slots  int
	obs    *obs.Registry
	events *obs.EventLog

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.Mutex
	cond    *sync.Cond
	jobs    map[string]*Job
	order   []string // submission order
	queue   []string // FIFO of queued job IDs
	running map[string]*slotCtl
	closed  bool

	cSubmitted, cResumed, cDone, cDegraded, cFailed, cCanceled *obs.Counter
	gQueued, gRunning                                          *obs.Gauge
}

// slotCtl controls one running job: its cancellation and whether the
// cancellation was an operator cancel (terminal) rather than a daemon
// shutdown (suspend).
type slotCtl struct {
	cancel   context.CancelFunc
	canceled bool
}

// Open builds a scheduler over the store and recovers persisted jobs:
// terminal jobs are indexed, queued jobs re-enter the queue, and jobs a
// previous daemon left mid-flight (running or checkpointing — e.g.
// after kill -9) are walked back to queued so they resume from their
// checkpoints. Call Start to begin executing.
func Open(store *Store, cfg SchedulerConfig) (*Scheduler, error) {
	slots := cfg.Slots
	if slots < 1 {
		slots = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		store:   store,
		slots:   slots,
		obs:     cfg.Obs,
		events:  cfg.Events,
		ctx:     ctx,
		cancel:  cancel,
		jobs:    map[string]*Job{},
		running: map[string]*slotCtl{},

		cSubmitted: cfg.Obs.Counter("rvnegtestd_jobs_submitted_total"),
		cResumed:   cfg.Obs.Counter("rvnegtestd_jobs_resumed_total"),
		cDone:      cfg.Obs.Counter("rvnegtestd_jobs_done_total"),
		cDegraded:  cfg.Obs.Counter("rvnegtestd_jobs_degraded_total"),
		cFailed:    cfg.Obs.Counter("rvnegtestd_jobs_failed_total"),
		cCanceled:  cfg.Obs.Counter("rvnegtestd_jobs_canceled_total"),
		gQueued:    cfg.Obs.Gauge("rvnegtestd_jobs_queued"),
		gRunning:   cfg.Obs.Gauge("rvnegtestd_jobs_running"),
	}
	s.cond = sync.NewCond(&s.mu)
	jobs, err := store.List()
	if err != nil {
		cancel()
		return nil, err
	}
	for _, job := range jobs {
		switch job.State {
		case StateRunning, StateCheckpointing:
			// A previous daemon died holding the slot. The engine
			// checkpoints under the job directory are the durable
			// state; re-queue and resume from them.
			if job.State == StateRunning {
				if err := job.transition(StateCheckpointing); err != nil {
					cancel()
					return nil, err
				}
			}
			if err := job.transition(StateQueued); err != nil {
				cancel()
				return nil, err
			}
			job.Resumes++
			job.StartedNS = 0
			if err := store.Put(job); err != nil {
				cancel()
				return nil, err
			}
			s.cResumed.Inc()
			s.emit(obs.Event{Type: "job_resume", Job: job.ID, Worker: -1,
				Detail: fmt.Sprintf("recovered after restart (resume %d)", job.Resumes)})
		}
		s.jobs[job.ID] = job
		s.order = append(s.order, job.ID)
		if job.State == StateQueued {
			s.queue = append(s.queue, job.ID)
		}
	}
	s.gQueued.Set(int64(len(s.queue)))
	return s, nil
}

// Start launches the slot workers. Call once.
func (s *Scheduler) Start() {
	for i := 0; i < s.slots; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Close gracefully stops the scheduler: running jobs are interrupted,
// checkpoint their engines, and suspend back to queued (they resume on
// the next Open); the call returns once every slot has drained.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	s.cond.Broadcast()
	s.wg.Wait()
}

// emit sends a scheduler event (nil-safe).
func (s *Scheduler) emit(ev obs.Event) { s.events.Emit(ev) }

// Submit validates, persists and enqueues a new job.
func (s *Scheduler) Submit(spec JobSpec) (*Job, error) {
	spec.Normalize()
	if err := spec.ValidateJob(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSchedulerClosed
	}
	job, err := s.store.NewJob(spec)
	if err != nil {
		return nil, err
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.queue = append(s.queue, job.ID)
	s.gQueued.Set(int64(len(s.queue)))
	s.cSubmitted.Inc()
	s.emit(obs.Event{Type: "job_submitted", Job: job.ID, Worker: -1,
		Detail: fmt.Sprintf("kind=%s workers=%d", job.Spec.Kind, job.Spec.Workers)})
	s.cond.Broadcast()
	return job.Clone(), nil
}

// Get returns a snapshot of one job.
func (s *Scheduler) Get(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoJob, id)
	}
	return job.Clone(), nil
}

// Jobs returns snapshots of every job in submission order.
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].Clone())
	}
	return out
}

// Cancel stops a job: a queued job cancels immediately, a running job is
// interrupted (its engines checkpoint, then the job lands in canceled).
// Terminal and checkpointing jobs return ErrJobTerminal.
func (s *Scheduler) Cancel(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoJob, id)
	}
	switch job.State {
	case StateQueued:
		for i, qid := range s.queue {
			if qid == id {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		s.gQueued.Set(int64(len(s.queue)))
		if err := job.transition(StateCanceled); err != nil {
			return err
		}
		job.FinishedNS = s.store.now()
		if err := s.store.Put(job); err != nil {
			return err
		}
		s.cCanceled.Inc()
		s.emit(obs.Event{Type: "job_canceled", Job: id, Worker: -1, Detail: "canceled while queued"})
		s.cond.Broadcast()
		return nil
	case StateRunning:
		ctl := s.running[id]
		if ctl == nil {
			return fmt.Errorf("campaign: job %s running but unowned", id)
		}
		ctl.canceled = true
		ctl.cancel()
		return nil
	default:
		return fmt.Errorf("%w: %s is %s", ErrJobTerminal, id, job.State)
	}
}

// Wait blocks until the job reaches a terminal state and returns its
// final snapshot.
func (s *Scheduler) Wait(ctx context.Context, id string) (*Job, error) {
	stop := context.AfterFunc(ctx, func() { s.cond.Broadcast() })
	defer stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		job, ok := s.jobs[id]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNoJob, id)
		}
		if job.State.Terminal() {
			return job.Clone(), nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if s.closed {
			return nil, ErrSchedulerClosed
		}
		s.cond.Wait()
	}
}

// worker is one scheduler slot: pop the next queued job, execute it,
// persist the outcome, repeat until the scheduler closes.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		id := s.queue[0]
		s.queue = s.queue[1:]
		job := s.jobs[id]
		if err := job.transition(StateRunning); err != nil {
			// Cannot happen for queued jobs; record and drop.
			job.State = StateFailed
			job.Error = err.Error()
			_ = s.store.Put(job)
			s.mu.Unlock()
			continue
		}
		job.StartedNS = s.store.now()
		jobCtx, cancelJob := context.WithCancel(s.ctx)
		ctl := &slotCtl{cancel: cancelJob}
		s.running[id] = ctl
		s.gQueued.Set(int64(len(s.queue)))
		s.gRunning.Set(int64(len(s.running)))
		if err := s.store.Put(job); err != nil {
			// The store is the source of truth; without it the job
			// cannot be tracked across restarts. Fail the job.
			s.finish(job, ctl, nil, err)
			cancelJob()
			continue
		}
		spec := job.Spec.Clone()
		s.mu.Unlock()

		s.emit(obs.Event{Type: "job_start", Job: id, Worker: -1})
		env := Env{
			CheckpointDir: s.store.CheckpointDir(id),
			QuarantineDir: s.store.QuarantineDir(id),
			Obs:           s.obs.NewChild(),
			Events:        s.events.ForJob(id),
		}
		res, err := Execute(jobCtx, spec, env)

		s.mu.Lock()
		s.finish(job, ctl, res, err)
		cancelJob()
	}
}

// finish moves a job out of the running state according to the
// execution outcome and persists it. Called with s.mu held; releases it.
func (s *Scheduler) finish(job *Job, ctl *slotCtl, res *Result, err error) {
	id := job.ID
	delete(s.running, id)
	s.gRunning.Set(int64(len(s.running)))

	// Every exit from running passes through checkpointing: the engine
	// checkpoints are already flushed (the engines save on the way out),
	// and the artifact write below happens under this state.
	terr := job.transition(StateCheckpointing)
	if terr == nil && s.store.Put(job) == nil {
		s.emit(obs.Event{Type: "job_checkpointing", Job: id, Worker: -1})
	}

	switch {
	case err == nil:
		// Persist artifacts before declaring the job finished, so a
		// "done" state always implies readable artifacts.
		s.mu.Unlock()
		aerr := res.WriteArtifacts(s.store.ArtifactsDir(id))
		s.mu.Lock()
		if aerr != nil {
			err = fmt.Errorf("writing artifacts: %w", aerr)
			break
		}
		job.FinishedNS = s.store.now()
		if res.Degraded() {
			job.Degraded = true
			_ = job.transition(StateDegraded)
			s.cDegraded.Inc()
			s.emit(obs.Event{Type: "job_done", Job: id, Worker: -1, Detail: "degraded by harness faults"})
		} else {
			_ = job.transition(StateDone)
			s.cDone.Inc()
			s.emit(obs.Event{Type: "job_done", Job: id, Worker: -1})
		}
		_ = s.store.Put(job)
		s.cond.Broadcast()
		s.mu.Unlock()
		return
	case errors.Is(err, ErrInterrupted) && ctl.canceled:
		job.FinishedNS = s.store.now()
		_ = job.transition(StateCanceled)
		_ = s.store.Put(job)
		s.cCanceled.Inc()
		s.emit(obs.Event{Type: "job_canceled", Job: id, Worker: -1, Detail: "interrupted by operator"})
		s.cond.Broadcast()
		s.mu.Unlock()
		return
	case errors.Is(err, ErrInterrupted):
		// Daemon shutdown: suspend. The next Open resumes the job from
		// its checkpoints.
		_ = job.transition(StateQueued)
		job.Resumes++
		job.StartedNS = 0
		_ = s.store.Put(job)
		s.queue = append(s.queue, id)
		s.gQueued.Set(int64(len(s.queue)))
		s.emit(obs.Event{Type: "job_suspend", Job: id, Worker: -1, Detail: "scheduler shutdown; will resume"})
		s.cond.Broadcast()
		s.mu.Unlock()
		return
	}
	// Failure.
	job.FinishedNS = s.store.now()
	job.Error = err.Error()
	_ = job.transition(StateFailed)
	_ = s.store.Put(job)
	s.cFailed.Inc()
	s.emit(obs.Event{Type: "job_failed", Job: id, Worker: -1, Detail: err.Error()})
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Store exposes the underlying job store for read-only path queries
// (artifact and quarantine listings in the HTTP layer).
func (s *Scheduler) Store() *Store { return s.store }
