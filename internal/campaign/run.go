package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"rvnegtest/internal/analysis"
	"rvnegtest/internal/compliance"
	"rvnegtest/internal/core"
	"rvnegtest/internal/coverage"
	"rvnegtest/internal/fuzz"
	"rvnegtest/internal/isa"
	"rvnegtest/internal/obs"
	"rvnegtest/internal/sim"
	"rvnegtest/internal/template"
)

// ErrInterrupted reports that a job stopped on context cancellation after
// checkpointing its state; executing again with the same spec and
// checkpoint directory continues bit-identically.
var ErrInterrupted = errors.New("campaign: interrupted")

// Env is everything environmental about one execution: where durable
// state and fault artifacts live, where telemetry flows, and the
// CLI-only wall-time budget. Env never influences result bytes — only
// whether and where they are persisted — which is what keeps a daemon
// job and a CLI run with the same JobSpec byte-identical.
type Env struct {
	// CheckpointDir enables checkpoint/resume: engine state persists
	// under it and an existing checkpoint is resumed instead of
	// starting over. Empty disables durable state (one-shot runs).
	CheckpointDir string
	// QuarantineDir, when set, receives inputs that triggered harness
	// faults.
	QuarantineDir string
	// WallBudget bounds one-shot fuzz generation by wall time (the
	// CLIs' -seconds; incompatible with checkpointing, zero for daemon
	// jobs).
	WallBudget time.Duration
	// Obs receives engine telemetry (nil disables).
	Obs *obs.Registry
	// Events receives lifecycle events (nil disables).
	Events *obs.EventLog
	// Progress, when non-nil, receives compliance shard-completion
	// callbacks (the CLI's -progress rendering).
	Progress func(compliance.ProgressEvent)
}

// Result is one executed job's outcome. Fuzz jobs fill Suite and the
// fuzzer stats; compliance jobs fill Report (plus GenStats when the
// suite was generated first).
type Result struct {
	Kind Kind

	// Suite is the generated suite (fuzz jobs), or the suite a
	// compliance job ran (loaded or generated) — kept for example
	// rendering, never written as a compliance artifact.
	Suite *compliance.Suite
	// WorkerStats are the per-worker fuzzer stats (one entry for
	// one-shot runs).
	WorkerStats []fuzz.Stats
	// TotalExecs / TotalFaults / Filter aggregate WorkerStats.
	TotalExecs  uint64
	TotalFaults uint64
	Filter      analysis.Stats
	// CampaignMode records which fuzz path ran (multi-worker or
	// checkpointed campaign vs. one-shot generation).
	CampaignMode bool
	// MinimizedFrom is the pre-minimization case count when a one-shot
	// suite was minimized (0 otherwise).
	MinimizedFrom int
	// MergedCases is the campaign-mode corpus size after the merge,
	// before any directed trap probes are appended to the suite.
	MergedCases int
	// SeedCases is the number of prior cases loaded from SeedSuite.
	SeedCases int

	// Report is the compliance report (compliance jobs).
	Report *compliance.Report
	// RunStats describes the compliance engine run.
	RunStats compliance.RunStats
	// GenStats is set when a compliance job generated its suite first.
	GenStats *fuzz.Stats
}

// Degraded reports whether the outcome carries harness faults: a
// degraded compliance report, or quarantined fuzz inputs. Maps to the
// CLIs' exit status 2 and the daemon's degraded job state.
func (r *Result) Degraded() bool {
	if r == nil {
		return false
	}
	if r.Report != nil && r.Report.Degraded() {
		return true
	}
	return r.Kind == KindFuzz && r.TotalFaults > 0
}

// Execute runs one job to completion (or interruption) on the calling
// goroutine. It is the only path from a JobSpec to engine invocations:
// rvfuzz and rvcompliance call it directly, the daemon scheduler calls
// it per slot — so for a given spec the artifacts are identical no
// matter who drove it.
func Execute(ctx context.Context, spec JobSpec, env Env) (*Result, error) {
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	switch spec.Kind {
	case KindFuzz:
		return executeFuzz(ctx, spec, env)
	default:
		return executeCompliance(ctx, spec, env)
	}
}

func executeFuzz(ctx context.Context, spec JobSpec, env Env) (*Result, error) {
	cfg, err := spec.fuzzConfig()
	if err != nil {
		return nil, err
	}
	cfg.QuarantineDir = env.QuarantineDir
	cfg.Obs = env.Obs
	cfg.Events = env.Events
	res := &Result{Kind: KindFuzz}
	if spec.SeedSuite != "" {
		prior, err := compliance.LoadSuite(spec.SeedSuite)
		if err != nil {
			return nil, fmt.Errorf("loading seed suite: %w", err)
		}
		cfg.Seeds = prior.Cases
		res.SeedCases = len(prior.Cases)
	}

	res.CampaignMode = env.CheckpointDir != "" || spec.Workers > 1
	if res.CampaignMode {
		if env.CheckpointDir != "" && env.WallBudget != 0 {
			return nil, specErrf("a wall-time budget cannot be combined with checkpointing; resume needs a deterministic execution bound")
		}
		if spec.Execs == 0 {
			return nil, specErrf("campaign mode needs an executions budget (per worker)")
		}
		cases, cstats, err := fuzz.Campaign(ctx, cfg, fuzz.CampaignConfig{
			Workers:         spec.Workers,
			ExecsEach:       spec.Execs,
			CheckpointDir:   env.CheckpointDir,
			CheckpointEvery: spec.CheckpointEvery,
			Minimize:        spec.Workers > 1 || spec.Minimize,
		})
		if errors.Is(err, fuzz.ErrInterrupted) {
			return nil, ErrInterrupted
		}
		if err != nil {
			return nil, err
		}
		res.WorkerStats = cstats
		res.MergedCases = len(cases)
		for _, s := range cstats {
			res.TotalExecs += s.Execs
			res.TotalFaults += s.HarnessFaults
			res.Filter.Merge(s.Filter)
		}
		res.Suite = &compliance.Suite{
			Cases:  cases,
			Family: cfg.Family,
			Origin: fmt.Sprintf("parallel fuzzer workers=%d seed=%d execs=%d", spec.Workers, spec.Seed, res.TotalExecs),
		}
		if cfg.Family == template.FamilyTrap {
			// Mirror GenerateSuite: the directed privileged probes ride
			// along with every generated trap suite.
			res.Suite.Cases = append(res.Suite.Cases, fuzz.TrapDirectedCases()...)
		}
		return res, nil
	}

	suite, st, err := core.GenerateSuite(cfg, spec.Execs, env.WallBudget)
	if err != nil {
		return nil, err
	}
	res.Suite = suite
	res.WorkerStats = []fuzz.Stats{st}
	res.TotalExecs = st.Execs
	res.TotalFaults = st.HarnessFaults
	res.Filter = st.Filter
	if spec.Minimize {
		min, err := fuzz.Minimize(suite.Cases, cfg)
		if err != nil {
			return nil, fmt.Errorf("minimizing: %w", err)
		}
		res.MinimizedFrom = len(suite.Cases)
		suite.Cases = min
	}
	return res, nil
}

// genConfig is the compliance-generation fuzzing configuration: exactly
// the fields the rvcompliance CLI has always applied to -generate
// (coverage, seed, family) — deliberately not the fuzz-job ablation and
// timeout knobs, so generated suites stay comparable across tools.
func (s *JobSpec) genConfig() (fuzz.Config, error) {
	cfg := fuzz.DefaultConfig()
	opts, ok := coverage.ByName(s.Cov)
	if !ok {
		return cfg, specErrf("unknown coverage configuration %q", s.Cov)
	}
	cfg.Coverage = opts
	cfg.Seed = s.Seed
	cfg.Family = s.family()
	return cfg, nil
}

func executeCompliance(ctx context.Context, spec JobSpec, env Env) (*Result, error) {
	res := &Result{Kind: KindCompliance}

	_, isFamily := template.ParseFamily(spec.Suite)
	var suite *compliance.Suite
	switch {
	case spec.Suite != "" && !isFamily:
		var err error
		suite, err = compliance.LoadSuite(spec.Suite)
		if err != nil {
			return nil, fmt.Errorf("loading suite: %w", err)
		}
	default:
		if spec.Execs == 0 && env.WallBudget == 0 {
			return nil, specErrf("compliance job needs a suite file, or a family name with an execs budget")
		}
		cfg, err := spec.genConfig()
		if err != nil {
			return nil, err
		}
		var st fuzz.Stats
		suite, st, err = core.GenerateSuite(cfg, spec.Execs, env.WallBudget)
		if err != nil {
			return nil, err
		}
		res.GenStats = &st
	}
	res.Suite = suite

	runner := &compliance.Runner{
		MaxExamples:      10,
		Workers:          spec.Workers,
		CaseTimeout:      spec.caseTimeout(),
		BreakerThreshold: spec.BreakerThreshold,
		QuarantineDir:    env.QuarantineDir,
		DisablePredecode: spec.DisablePredecode,
		Batch:            spec.Batch,
		External:         spec.sutSpecs(),
		HalfOpenAfter:    spec.SUTHalfOpen,
		Obs:              env.Obs,
		Events:           env.Events,
		Progress:         env.Progress,
	}
	ref, ok := sim.ByName(spec.Ref)
	if !ok {
		return nil, specErrf("unknown reference simulator %q", spec.Ref)
	}
	runner.Ref = ref
	for _, name := range spec.Sims {
		v, ok := sim.ByName(name)
		if !ok {
			return nil, specErrf("unknown simulator %q", name)
		}
		runner.SUTs = append(runner.SUTs, v)
	}
	for _, name := range spec.ISAs {
		cfg, err := isa.ParseConfig(name)
		if err != nil {
			return nil, err
		}
		runner.Configs = append(runner.Configs, cfg)
	}

	var rep *compliance.Report
	var err error
	if env.CheckpointDir != "" {
		rep, err = runner.RunResumable(ctx, suite, env.CheckpointDir)
	} else {
		rep, err = runner.RunContext(ctx, suite)
	}
	if errors.Is(err, compliance.ErrInterrupted) {
		return nil, ErrInterrupted
	}
	if err != nil {
		return nil, err
	}
	res.Report = rep
	res.RunStats = runner.Stats
	return res, nil
}

// EncodeFuzzStats is the canonical stats-JSON artifact: deterministic
// per-worker campaign stats (wall-clock fields zeroed) plus the final
// case count. The rvfuzz -stats-json flag and the daemon's stats.json
// artifact both emit exactly these bytes.
func EncodeFuzzStats(workerStats []fuzz.Stats, cases int) ([]byte, error) {
	det := make([]fuzz.Stats, len(workerStats))
	for i, s := range workerStats {
		det[i] = s.Deterministic()
	}
	payload := struct {
		Workers []fuzz.Stats `json:"workers"`
		Cases   int          `json:"cases"`
	}{det, cases}
	raw, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(raw, '\n'), nil
}

// Artifact file names under a job's artifacts directory.
const (
	ArtifactSuite      = "suite.txt"   // fuzz: the generated suite
	ArtifactFuzzStats  = "stats.json"  // fuzz: deterministic campaign stats
	ArtifactReport     = "report.txt"  // compliance: rendered Table-I report
	ArtifactReportJSON = "report.json" // compliance: machine-readable report
)

// WriteArtifacts persists the result's canonical artifact files into
// dir, creating it as needed. The bytes match what the equivalent CLI
// invocation would have written (suite.Save, -stats-json, -json).
func (r *Result) WriteArtifacts(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	switch r.Kind {
	case KindFuzz:
		if err := r.Suite.Save(filepath.Join(dir, ArtifactSuite)); err != nil {
			return err
		}
		stats, err := EncodeFuzzStats(r.WorkerStats, len(r.Suite.Cases))
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dir, ArtifactFuzzStats), stats, 0o644)
	default:
		if err := os.WriteFile(filepath.Join(dir, ArtifactReport), []byte(r.Report.Render()), 0o644); err != nil {
			return err
		}
		raw, err := r.Report.JSON()
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dir, ArtifactReportJSON), append(raw, '\n'), 0o644)
	}
}
