package campaign

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func testSpec() JobSpec {
	s := JobSpec{Kind: KindFuzz, Execs: 1000}
	s.Normalize()
	return s
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec()
	spec.Sims = []string{} // explicit-empty must survive the round trip
	job, err := st.NewJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	if job.ID != "job-000001" || job.State != StateQueued {
		t.Fatalf("new job = %s/%s", job.ID, job.State)
	}
	got, err := st.Get(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Spec.Kind != KindFuzz || got.Spec.Execs != 1000 {
		t.Fatalf("spec did not round-trip: %+v", got.Spec)
	}
	if got.Spec.Sims == nil {
		t.Fatal("explicit-empty sims collapsed to nil through the store")
	}
	if _, err := st.Get("job-999999"); !errors.Is(err, ErrNoJob) {
		t.Fatalf("missing job error = %v, want ErrNoJob", err)
	}
}

func TestStoreIDsSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := st.NewJob(testSpec()); err != nil {
			t.Fatal(err)
		}
	}
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	job, err := st2.NewJob(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if job.ID != "job-000004" {
		t.Fatalf("reopened store allocated %s, want job-000004", job.ID)
	}
	jobs, err := st2.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 4 {
		t.Fatalf("listed %d jobs, want 4", len(jobs))
	}
	for i, j := range jobs {
		if want := i + 1; j.ID != filepath.Base(st2.JobDir(j.ID)) || jobs[i].ID <= "" || want == 0 {
			t.Fatalf("listing order broken at %d: %s", i, j.ID)
		}
		if i > 0 && jobs[i-1].ID >= j.ID {
			t.Fatalf("listing not ID-sorted: %s before %s", jobs[i-1].ID, j.ID)
		}
	}
}

func TestStoreArtifactsListing(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	job, err := st.NewJob(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	files, err := st.Artifacts(job.ID)
	if err != nil || len(files) != 0 {
		t.Fatalf("empty artifacts = %v, %v (want [], nil)", files, err)
	}
	adir := st.ArtifactsDir(job.ID)
	if err := os.MkdirAll(adir, 0o755); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(adir, "b.txt"), []byte("bb"), 0o644)
	os.WriteFile(filepath.Join(adir, "a.txt"), []byte("a"), 0o644)
	files, err = st.Artifacts(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 || files[0].Name != "a.txt" || files[0].Size != 1 || files[1].Name != "b.txt" {
		t.Fatalf("artifact listing = %+v", files)
	}
}

func TestSafeName(t *testing.T) {
	for name, want := range map[string]bool{
		"suite.txt": true, "report.json": true, "case-0a1b2c3d4e5f-0a1b.bin": true,
		"": false, ".": false, "..": false, "a/b": false, "../x": false, `a\b`: false,
	} {
		if SafeName(name) != want {
			t.Errorf("SafeName(%q) = %v, want %v", name, !want, want)
		}
	}
}
