package campaign

import "testing"

func TestStateTransitions(t *testing.T) {
	allowed := []struct{ from, to State }{
		{StateQueued, StateRunning},
		{StateQueued, StateCanceled},
		{StateRunning, StateCheckpointing},
		{StateRunning, StateFailed},
		{StateRunning, StateCanceled},
		{StateCheckpointing, StateDone},
		{StateCheckpointing, StateDegraded},
		{StateCheckpointing, StateFailed},
		{StateCheckpointing, StateCanceled},
		{StateCheckpointing, StateQueued}, // suspend back to the queue
	}
	for _, tr := range allowed {
		if !canTransition(tr.from, tr.to) {
			t.Errorf("transition %s -> %s should be allowed", tr.from, tr.to)
		}
	}
	denied := []struct{ from, to State }{
		{StateQueued, StateDone},
		{StateQueued, StateCheckpointing},
		{StateRunning, StateDone},     // must pass through checkpointing
		{StateRunning, StateDegraded}, // ditto
		{StateRunning, StateQueued},   // ditto
		{StateDone, StateRunning},
		{StateFailed, StateQueued},
		{StateCanceled, StateRunning},
		{StateDegraded, StateQueued},
	}
	for _, tr := range denied {
		if canTransition(tr.from, tr.to) {
			t.Errorf("transition %s -> %s should be rejected", tr.from, tr.to)
		}
	}
}

func TestStateTerminal(t *testing.T) {
	for st, terminal := range map[State]bool{
		StateQueued: false, StateRunning: false, StateCheckpointing: false,
		StateDone: true, StateDegraded: true, StateFailed: true, StateCanceled: true,
	} {
		if st.Terminal() != terminal {
			t.Errorf("%s.Terminal() = %v, want %v", st, st.Terminal(), terminal)
		}
		if !st.Valid() {
			t.Errorf("%s should be valid", st)
		}
	}
	if State("bogus").Valid() {
		t.Error("bogus state should be invalid")
	}
}

func TestJobTransitionRejectsInvalid(t *testing.T) {
	j := &Job{ID: "job-000001", State: StateQueued}
	if err := j.transition(StateDone); err == nil {
		t.Fatal("queued -> done should error")
	}
	if j.State != StateQueued {
		t.Fatalf("failed transition mutated state to %s", j.State)
	}
	if err := j.transition(StateRunning); err != nil {
		t.Fatalf("queued -> running: %v", err)
	}
	if j.State != StateRunning {
		t.Fatalf("state = %s, want running", j.State)
	}
}
