// Package campaign is the unified campaign layer: one serializable job
// description (JobSpec), one execution core (Execute) and one lifecycle
// machine (State) shared by the rvfuzz and rvcompliance CLIs and the
// rvnegtestd daemon. A CLI run is "build one spec, execute, render"; a
// daemon run is the same spec traveling through the persistent job store
// and the scheduler — and because both sides call the same Execute with
// the same engine configuration, the artifacts they produce (suites,
// reports, stats JSON, checkpoints) are byte-identical by construction.
package campaign

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"rvnegtest/internal/coverage"
	"rvnegtest/internal/fuzz"
	"rvnegtest/internal/isa"
	"rvnegtest/internal/sim"
	"rvnegtest/internal/sut"
	"rvnegtest/internal/template"
)

// Kind selects the engine a job runs on.
type Kind string

const (
	// KindFuzz is Phase A: coverage-guided suite generation.
	KindFuzz Kind = "fuzz"
	// KindCompliance is Phase B: run a suite across simulators and
	// compare signatures against the reference.
	KindCompliance Kind = "compliance"
)

// SUTSpec names one external simulator-under-test adapter column
// (a serializable subset of sut.Spec).
type SUTSpec struct {
	// Name is the report column name.
	Name string `json:"name"`
	// Argv is the adapter command line (Argv[0] is the binary).
	Argv []string `json:"argv"`
}

// JobSpec is the serializable description of one campaign job. It is the
// single source of truth for what runs: the CLIs build one from flags,
// the daemon accepts one as the POST /api/v1/jobs body, and Execute
// turns it into engine configuration. Every field that influences
// results is here; everything environmental (directories, telemetry)
// lives in Env, so the same spec always produces the same artifacts.
type JobSpec struct {
	Kind Kind `json:"kind"`

	// Suite selects the input material. For fuzz jobs it is the
	// template family to generate for ("user" or "trap"; empty means
	// user). For compliance jobs it is either a family name (generate a
	// suite first, budgeted by Execs) or a path to a saved suite file.
	Suite string `json:"suite,omitempty"`
	// Cov is the coverage configuration for generation ("v0".."v3";
	// empty means v3).
	Cov string `json:"cov,omitempty"`
	// ISA is the foundation simulator's configuration for fuzz jobs
	// (empty means RV32GC).
	ISA string `json:"isa,omitempty"`
	// Seed makes generation deterministic (default 1).
	Seed int64 `json:"seed"`
	// Execs is the generation budget: per-worker executions for fuzz
	// jobs, the -generate budget for compliance jobs that name a
	// family. Daemon jobs must be exec-bounded — a wall-time budget
	// cannot resume deterministically.
	Execs uint64 `json:"execs,omitempty"`
	// Workers is the engine parallelism: independent fuzzers whose
	// corpora merge in worker order, or compliance engine shards. For
	// fuzz jobs the worker count shapes the corpus (each worker owns a
	// seed); for compliance it never changes the report.
	Workers int `json:"workers,omitempty"`
	// Batch enables batched lockstep execution with this many lanes
	// per worker (0 disables; artifacts are identical either way).
	Batch int `json:"batch,omitempty"`
	// CaseTimeoutSec is the per-case wall-clock watchdog in seconds
	// (0 disables).
	CaseTimeoutSec float64 `json:"case_timeout_sec,omitempty"`
	// CheckpointEvery is the fuzz engine's periodic checkpoint interval
	// in executions (0 means the engine default, 100000).
	CheckpointEvery uint64 `json:"checkpoint_every,omitempty"`
	// Minimize replays the corpus and drops coverage-redundant cases
	// before saving (fuzz jobs; multi-worker campaigns always minimize).
	Minimize bool `json:"minimize,omitempty"`
	// SeedSuite optionally seeds a fuzz campaign with a previously
	// generated suite file.
	SeedSuite string `json:"seed_suite,omitempty"`
	// Ablation switches; artifacts are identical with DisablePredecode
	// either way, the other two change what the fuzzer finds.
	DisableCustomMutator bool `json:"disable_custom_mutator,omitempty"`
	DisableFilter        bool `json:"disable_filter,omitempty"`
	DisablePredecode     bool `json:"disable_predecode,omitempty"`

	// Compliance-only fields.

	// Ref is the reference simulator (empty means riscvOVPsim).
	Ref string `json:"ref,omitempty"`
	// Sims are the built-in simulators under test. Nil means the
	// paper's default set; an explicit empty slice selects none
	// (external-only campaigns). Deliberately not omitempty: the
	// empty-but-present form must round-trip through the job store.
	Sims []string `json:"sims"`
	// ISAs are the configurations to test (Table I rows; empty means
	// RV32I, RV32IMC, RV32GC).
	ISAs []string `json:"isas,omitempty"`
	// BreakerThreshold is the consecutive-harness-fault trip count
	// (0 default, <0 disables).
	BreakerThreshold int `json:"breaker_threshold,omitempty"`
	// External adds out-of-process SUT adapter columns.
	External []SUTSpec `json:"external,omitempty"`
	// SUTTimeoutSec / SUTRetries / SUTHalfOpen tune external adapter
	// supervision (zero values select the sut package defaults).
	SUTTimeoutSec float64 `json:"sut_timeout_sec,omitempty"`
	SUTRetries    int     `json:"sut_retries,omitempty"`
	SUTHalfOpen   int     `json:"sut_half_open,omitempty"`
}

// errSpec wraps validation problems so API layers can map them to 4xx.
var ErrInvalidSpec = errors.New("campaign: invalid job spec")

func specErrf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalidSpec, fmt.Sprintf(format, args...))
}

// Normalize fills defaulted fields in place so that specs compare and
// serialize canonically (a normalized spec validates iff the original
// did).
func (s *JobSpec) Normalize() {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Cov == "" {
		s.Cov = "v3"
	}
	switch s.Kind {
	case KindFuzz:
		if s.Suite == "" {
			s.Suite = "user"
		}
		if s.ISA == "" {
			s.ISA = "RV32GC"
		}
		if s.Workers < 1 {
			s.Workers = 1
		}
	case KindCompliance:
		if s.Ref == "" {
			s.Ref = "riscvOVPsim"
		}
		if s.Sims == nil {
			s.Sims = []string{"Spike", "VP", "sail-riscv", "GRIFT"}
		}
		if len(s.ISAs) == 0 {
			s.ISAs = []string{"RV32I", "RV32IMC", "RV32GC"}
		}
	}
}

// Validate checks the spec against the engines' vocabulary: unknown
// names, missing budgets and nonsense combinations are caught here, so
// the daemon can reject bad submissions with a 4xx instead of failing a
// job later. Specs should be Normalized first.
func (s *JobSpec) Validate() error {
	switch s.Kind {
	case KindFuzz, KindCompliance:
	case "":
		return specErrf("missing kind (want %q or %q)", KindFuzz, KindCompliance)
	default:
		return specErrf("unknown kind %q (want %q or %q)", s.Kind, KindFuzz, KindCompliance)
	}
	if _, ok := coverage.ByName(s.Cov); !ok {
		return specErrf("unknown coverage configuration %q", s.Cov)
	}
	if s.Workers < 0 && s.Kind == KindFuzz {
		return specErrf("fuzz workers must be >= 1, got %d", s.Workers)
	}
	if s.Batch < 0 {
		return specErrf("batch must be >= 0, got %d", s.Batch)
	}
	if s.CaseTimeoutSec < 0 {
		return specErrf("case timeout must be >= 0, got %v", s.CaseTimeoutSec)
	}
	switch s.Kind {
	case KindFuzz:
		if _, ok := template.ParseFamily(s.Suite); !ok {
			return specErrf("unknown suite family %q (want user or trap)", s.Suite)
		}
		if s.ISA != "" {
			if _, err := isa.ParseConfig(s.ISA); err != nil {
				return specErrf("%v", err)
			}
		}
	case KindCompliance:
		if _, ok := sim.ByName(s.Ref); !ok {
			return specErrf("unknown reference simulator %q", s.Ref)
		}
		for _, name := range s.Sims {
			if _, ok := sim.ByName(name); !ok {
				return specErrf("unknown simulator %q", name)
			}
		}
		for _, name := range s.ISAs {
			if _, err := isa.ParseConfig(name); err != nil {
				return specErrf("%v", err)
			}
		}
		if len(s.Sims) == 0 && len(s.External) == 0 {
			return specErrf("no simulators under test: set sims and/or external")
		}
		seen := map[string]bool{}
		for _, e := range s.External {
			if e.Name == "" || len(e.Argv) == 0 {
				return specErrf("external column needs a name and a command")
			}
			if seen[e.Name] {
				return specErrf("duplicate external column %q", e.Name)
			}
			seen[e.Name] = true
		}
	}
	return nil
}

// ValidateJob applies the stricter daemon-grade rules on top of
// Validate: scheduled jobs must be exec-bounded (resumable across
// restarts) and self-contained.
func (s *JobSpec) ValidateJob() error {
	if err := s.Validate(); err != nil {
		return err
	}
	if s.Kind == KindFuzz && s.Execs == 0 {
		return specErrf("fuzz job needs an execs budget (wall-time budgets cannot resume deterministically)")
	}
	if s.Kind == KindCompliance && s.Execs == 0 {
		if _, isFamily := template.ParseFamily(s.Suite); s.Suite == "" || isFamily {
			return specErrf("compliance job needs a suite file, or a family name with an execs budget")
		}
	}
	return nil
}

// Clone returns a deep copy (the scheduler hands snapshots to the HTTP
// layer while the original keeps evolving).
func (s JobSpec) Clone() JobSpec {
	c := s
	c.Sims = append([]string(nil), s.Sims...)
	c.ISAs = append([]string(nil), s.ISAs...)
	c.External = make([]SUTSpec, len(s.External))
	for i, e := range s.External {
		c.External[i] = SUTSpec{Name: e.Name, Argv: append([]string(nil), e.Argv...)}
	}
	return c
}

// caseTimeout converts the serialized seconds into the engine duration.
func (s *JobSpec) caseTimeout() time.Duration {
	return time.Duration(s.CaseTimeoutSec * float64(time.Second))
}

// family resolves the template family a fuzz (or generated compliance)
// job targets.
func (s *JobSpec) family() template.Family {
	f, _ := template.ParseFamily(s.Suite)
	return f
}

// fuzzConfig builds the engine configuration shared by fuzz jobs and
// compliance-generation — the one place flags/spec fields map onto
// fuzz.Config, so the CLIs and the daemon cannot diverge.
func (s *JobSpec) fuzzConfig() (fuzz.Config, error) {
	cfg := fuzz.DefaultConfig()
	opts, ok := coverage.ByName(s.Cov)
	if !ok {
		return cfg, specErrf("unknown coverage configuration %q", s.Cov)
	}
	cfg.Coverage = opts
	if s.ISA != "" {
		isaCfg, err := isa.ParseConfig(s.ISA)
		if err != nil {
			return cfg, err
		}
		cfg.ISA = isaCfg
	}
	cfg.Family = s.family()
	cfg.Seed = s.Seed
	cfg.DisableCustomMutator = s.DisableCustomMutator
	cfg.DisableFilter = s.DisableFilter
	cfg.DisablePredecode = s.DisablePredecode
	cfg.Batch = s.Batch
	cfg.CaseTimeout = s.caseTimeout()
	return cfg, nil
}

// sutSpecs expands the serializable external columns into adapter specs
// with the job's supervision tuning applied.
func (s *JobSpec) sutSpecs() []sut.Spec {
	if len(s.External) == 0 {
		return nil
	}
	specs := make([]sut.Spec, len(s.External))
	for i, e := range s.External {
		specs[i] = sut.Spec{
			Name:       e.Name,
			Argv:       append([]string(nil), e.Argv...),
			RunTimeout: time.Duration(s.SUTTimeoutSec * float64(time.Second)),
			Retries:    s.SUTRetries,
		}
	}
	return specs
}

// ParseSUT parses a NAME=COMMAND [ARGS...] column description (the -sut
// flag syntax; the command is split on whitespace).
func ParseSUT(v string) (SUTSpec, error) {
	name, cmd, ok := strings.Cut(v, "=")
	name = strings.TrimSpace(name)
	argv := strings.Fields(cmd)
	if !ok || name == "" || len(argv) == 0 {
		return SUTSpec{}, fmt.Errorf("want NAME=COMMAND [ARGS...], got %q", v)
	}
	return SUTSpec{Name: name, Argv: argv}, nil
}
