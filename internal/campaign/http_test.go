package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// newTestAPI builds a scheduler (clock pinned to zero so responses are
// golden) behind an httptest server. start=false keeps submitted jobs
// queued forever, which makes lifecycle responses deterministic.
func newTestAPI(t *testing.T, start bool, slots int) (*Scheduler, *httptest.Server) {
	t.Helper()
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.now = func() int64 { return 0 }
	s, err := Open(st, SchedulerConfig{Slots: slots})
	if err != nil {
		t.Fatal(err)
	}
	if start {
		s.Start()
	}
	t.Cleanup(s.Close)
	srv := httptest.NewServer(NewAPI(s))
	t.Cleanup(srv.Close)
	return s, srv
}

func do(t *testing.T, method, url, body string) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(raw)
}

// TestSubmitGolden pins the exact submit response bytes: a normalized
// spec echo plus the queued lifecycle state, nothing else.
func TestSubmitGolden(t *testing.T) {
	_, srv := newTestAPI(t, false, 1)
	status, body := do(t, "POST", srv.URL+"/api/v1/jobs", `{"kind":"fuzz","execs":500}`)
	if status != http.StatusCreated {
		t.Fatalf("status %d, want 201 (body %s)", status, body)
	}
	want := `{"id":"job-000001","spec":{"kind":"fuzz","suite":"user","cov":"v3","isa":"RV32GC","seed":1,"execs":500,"workers":1,"sims":null},"state":"queued"}` + "\n"
	if body != want {
		t.Fatalf("submit body:\n got %q\nwant %q", body, want)
	}

	status, body = do(t, "GET", srv.URL+"/api/v1/jobs/job-000001", "")
	if status != http.StatusOK || body != want {
		t.Fatalf("get status %d body %q, want 200 %q", status, body, want)
	}

	status, body = do(t, "GET", srv.URL+"/api/v1/jobs", "")
	wantList := `{"jobs":[` + strings.TrimSuffix(want, "\n") + `]}` + "\n"
	if status != http.StatusOK || body != wantList {
		t.Fatalf("list status %d body %q, want 200 %q", status, body, wantList)
	}
}

// TestSubmitInvalidSpecs pins the 4xx contract: malformed bodies,
// unknown fields and invalid specs are client errors, never 500s.
func TestSubmitInvalidSpecs(t *testing.T) {
	_, srv := newTestAPI(t, false, 1)
	cases := []struct {
		body     string
		wantFrag string
	}{
		{`{`, "decoding job spec"},
		{`{"kind":"fuzz","execs":1,"bogus":true}`, `unknown field \"bogus\"`},
		{`{"kind":"warp"}`, `unknown kind \"warp\"`},
		{`{"kind":"fuzz"}`, "fuzz job needs an execs budget"},
		{`{"kind":"fuzz","execs":10,"cov":"v9"}`, `unknown coverage configuration \"v9\"`},
		{`{"kind":"compliance","execs":10,"sims":["NoSuchSim"]}`, `unknown simulator \"NoSuchSim\"`},
		{`{"kind":"compliance"}`, "needs a suite file"},
		{`{"kind":"compliance","execs":10,"sims":[]}`, "no simulators under test"},
	}
	for _, c := range cases {
		status, body := do(t, "POST", srv.URL+"/api/v1/jobs", c.body)
		if status != http.StatusBadRequest {
			t.Errorf("submit %s: status %d, want 400 (body %s)", c.body, status, body)
		}
		if !strings.Contains(body, c.wantFrag) {
			t.Errorf("submit %s: body %q does not mention %q", c.body, body, c.wantFrag)
		}
		var eb map[string]any
		if err := json.Unmarshal([]byte(body), &eb); err != nil || eb["error"] == "" {
			t.Errorf("submit %s: body %q is not an error object", c.body, body)
		}
	}
}

func TestJobNotFound(t *testing.T) {
	_, srv := newTestAPI(t, false, 1)
	for _, url := range []string{
		"/api/v1/jobs/job-000042",
		"/api/v1/jobs/job-000042/artifacts",
		"/api/v1/jobs/job-000042/quarantine",
		"/api/v1/jobs/job-000042/artifacts/suite.txt",
	} {
		status, body := do(t, "GET", srv.URL+url, "")
		if status != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404 (body %s)", url, status, body)
		}
	}
	status, _ := do(t, "POST", srv.URL+"/api/v1/jobs/job-000042/cancel", "")
	if status != http.StatusNotFound {
		t.Errorf("cancel missing job: status %d, want 404", status)
	}
}

func TestCancelLifecycleOverHTTP(t *testing.T) {
	_, srv := newTestAPI(t, false, 1)
	do(t, "POST", srv.URL+"/api/v1/jobs", `{"kind":"fuzz","execs":500}`)
	status, body := do(t, "POST", srv.URL+"/api/v1/jobs/job-000001/cancel", "")
	if status != http.StatusOK || !strings.Contains(body, `"state":"canceled"`) {
		t.Fatalf("cancel: status %d body %s", status, body)
	}
	status, body = do(t, "POST", srv.URL+"/api/v1/jobs/job-000001/cancel", "")
	if status != http.StatusConflict {
		t.Fatalf("second cancel: status %d body %s, want 409", status, body)
	}
}

func TestArtifactEndpoints(t *testing.T) {
	_, srv := newTestAPI(t, false, 1)
	do(t, "POST", srv.URL+"/api/v1/jobs", `{"kind":"fuzz","execs":500}`)
	status, body := do(t, "GET", srv.URL+"/api/v1/jobs/job-000001/artifacts", "")
	if status != http.StatusOK || body != `{"files":[]}`+"\n" {
		t.Fatalf("artifacts of queued job: status %d body %q", status, body)
	}
	status, body = do(t, "GET", srv.URL+"/api/v1/jobs/job-000001/artifacts/suite.txt", "")
	if status != http.StatusNotFound {
		t.Fatalf("missing artifact: status %d body %s, want 404", status, body)
	}
	status, body = do(t, "GET", srv.URL+"/api/v1/jobs/job-000001/quarantine", "")
	if status != http.StatusOK || body != `{"files":[]}`+"\n" {
		t.Fatalf("quarantine of queued job: status %d body %q", status, body)
	}
}

func TestHealthz(t *testing.T) {
	_, srv := newTestAPI(t, false, 1)
	do(t, "POST", srv.URL+"/api/v1/jobs", `{"kind":"fuzz","execs":500}`)
	status, body := do(t, "GET", srv.URL+"/api/v1/healthz", "")
	want := `{"status":"ok","jobs":1,"queued":1,"running":0}` + "\n"
	if status != http.StatusOK || body != want {
		t.Fatalf("healthz: status %d body %q, want %q", status, body, want)
	}
}

func TestWaitRejectsBadTimeout(t *testing.T) {
	_, srv := newTestAPI(t, false, 1)
	do(t, "POST", srv.URL+"/api/v1/jobs", `{"kind":"fuzz","execs":500}`)
	status, _ := do(t, "GET", srv.URL+"/api/v1/jobs/job-000001/wait?timeout_sec=nope", "")
	if status != http.StatusBadRequest {
		t.Fatalf("bad timeout: status %d, want 400", status)
	}
}

// TestConcurrentSubmitHammer drives parallel submissions and waits for
// every job to finish; run with -race this shakes out scheduler and
// store races.
func TestConcurrentSubmitHammer(t *testing.T) {
	_, srv := newTestAPI(t, true, 2)
	const goroutines, each = 8, 3
	ids := make(chan string, goroutines*each)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				spec := fmt.Sprintf(`{"kind":"fuzz","execs":300,"seed":%d}`, g*each+i+1)
				status, body := do(t, "POST", srv.URL+"/api/v1/jobs", spec)
				if status != http.StatusCreated {
					t.Errorf("submit: status %d body %s", status, body)
					return
				}
				var job Job
				if err := json.Unmarshal([]byte(body), &job); err != nil {
					t.Errorf("decoding submit response: %v", err)
					return
				}
				ids <- job.ID
			}
		}(g)
	}
	wg.Wait()
	close(ids)
	seen := map[string]bool{}
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate job ID %s", id)
		}
		seen[id] = true
		status, body := do(t, "GET", srv.URL+"/api/v1/jobs/"+id+"/wait?timeout_sec=120", "")
		if status != http.StatusOK {
			t.Fatalf("wait %s: status %d body %s", id, status, body)
		}
		var job Job
		if err := json.Unmarshal([]byte(body), &job); err != nil {
			t.Fatal(err)
		}
		if job.State != StateDone {
			t.Fatalf("job %s finished %s (error %q), want done", id, job.State, job.Error)
		}
	}
	if len(seen) != goroutines*each {
		t.Fatalf("completed %d jobs, want %d", len(seen), goroutines*each)
	}
}
