package campaign

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"rvnegtest/internal/resilience"
)

// Job is one scheduled campaign: a spec plus lifecycle state, persisted
// as an atomic, versioned job.json so queued and running jobs survive
// daemon restarts (including kill -9 — the engines' checkpoints under
// the job directory are the durable mid-run state, job.json only has to
// say "this job exists and was running").
type Job struct {
	// ID is the store-unique job name ("job-000001").
	ID string `json:"id"`
	// Spec is the immutable job description.
	Spec JobSpec `json:"spec"`
	// State is the lifecycle position.
	State State `json:"state"`
	// Error carries the failure detail for failed jobs.
	Error string `json:"error,omitempty"`
	// Degraded records harness faults on an otherwise completed job
	// (redundant with StateDegraded; kept for listings).
	Degraded bool `json:"degraded,omitempty"`
	// Resumes counts how many times the job resumed from a checkpoint
	// (daemon restarts and suspensions).
	Resumes int `json:"resumes,omitempty"`
	// SubmittedNS/StartedNS/FinishedNS are wall-clock Unix timestamps
	// in nanoseconds (0 = not yet). Operational metadata only — never
	// part of result artifacts.
	SubmittedNS int64 `json:"submitted_ns,omitempty"`
	StartedNS   int64 `json:"started_ns,omitempty"`
	FinishedNS  int64 `json:"finished_ns,omitempty"`
}

// Clone returns a deep copy, so API handlers can serialize a snapshot
// while the scheduler keeps mutating the original.
func (j *Job) Clone() *Job {
	c := *j
	c.Spec = j.Spec.Clone()
	return &c
}

const (
	jobFormat     = "rvnegtestd-job"
	jobVersion    = 1
	jobFileName   = "job.json"
	jobDirPrefix  = "job-"
	checkpointSub = "checkpoint"
	quarantineSub = "quarantine"
	artifactsSub  = "artifacts"
)

// ErrNoJob reports a job ID the store has never seen.
var ErrNoJob = errors.New("campaign: no such job")

// Store is the daemon's persistent job queue: a directory holding one
// subdirectory per job —
//
//	<root>/job-000001/job.json      spec + lifecycle state (atomic)
//	<root>/job-000001/checkpoint/   engine checkpoints (durable job state)
//	<root>/job-000001/quarantine/   fault-triggering inputs for triage
//	<root>/job-000001/artifacts/    suite.txt / stats.json / report.*
//
// Job IDs are monotonically allocated by scanning existing directories,
// so restarts never reuse an ID. The Store itself is not goroutine-safe;
// the Scheduler serializes access.
type Store struct {
	root string
	next int

	// now is the wall clock, injectable for deterministic tests.
	now func() int64
}

// OpenStore opens (creating if needed) a job store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("campaign: store needs a root directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{root: dir, now: func() int64 { return time.Now().UnixNano() }}
	ids, err := s.scan()
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		var n int
		if _, err := fmt.Sscanf(id, jobDirPrefix+"%d", &n); err == nil && n >= s.next {
			s.next = n + 1
		}
	}
	if s.next == 0 {
		s.next = 1
	}
	return s, nil
}

// Root returns the store directory.
func (s *Store) Root() string { return s.root }

// scan lists existing job directory names in ID order.
func (s *Store) scan() ([]string, error) {
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), jobDirPrefix) {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// NewJob allocates the next job directory for spec and persists it in
// the queued state.
func (s *Store) NewJob(spec JobSpec) (*Job, error) {
	id := fmt.Sprintf("%s%06d", jobDirPrefix, s.next)
	s.next++
	job := &Job{ID: id, Spec: spec, State: StateQueued, SubmittedNS: s.now()}
	if err := os.MkdirAll(s.JobDir(id), 0o755); err != nil {
		return nil, err
	}
	if err := s.Put(job); err != nil {
		return nil, err
	}
	return job, nil
}

// Put atomically persists the job's current state.
func (s *Store) Put(job *Job) error {
	return resilience.SaveJSON(filepath.Join(s.JobDir(job.ID), jobFileName), jobFormat, jobVersion, job)
}

// Get loads one job by ID.
func (s *Store) Get(id string) (*Job, error) {
	var job Job
	_, err := resilience.LoadJSON(filepath.Join(s.JobDir(id), jobFileName), jobFormat, jobVersion, &job)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNoJob, id)
	}
	if err != nil {
		return nil, err
	}
	return &job, nil
}

// List loads every job, sorted by ID (submission order).
func (s *Store) List() ([]*Job, error) {
	ids, err := s.scan()
	if err != nil {
		return nil, err
	}
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		job, err := s.Get(id)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, job)
	}
	return jobs, nil
}

// JobDir returns the job's directory.
func (s *Store) JobDir(id string) string { return filepath.Join(s.root, id) }

// CheckpointDir returns where the job's engine checkpoints live.
func (s *Store) CheckpointDir(id string) string {
	return filepath.Join(s.JobDir(id), checkpointSub)
}

// QuarantineDir returns where the job's fault-triggering inputs live.
func (s *Store) QuarantineDir(id string) string {
	return filepath.Join(s.JobDir(id), quarantineSub)
}

// ArtifactsDir returns where the job's result artifacts live.
func (s *Store) ArtifactsDir(id string) string {
	return filepath.Join(s.JobDir(id), artifactsSub)
}

// ArtifactFile is one entry of a job's artifact listing.
type ArtifactFile struct {
	Name string `json:"name"`
	Size int64  `json:"size"`
}

// Artifacts lists the job's artifact files sorted by name. A job that
// has not finished (or failed before producing results) lists none.
func (s *Store) Artifacts(id string) ([]ArtifactFile, error) {
	return listDirFiles(s.ArtifactsDir(id))
}

// QuarantineFiles lists the job's quarantine entries (the .bin/.txt
// pairs written by resilience.Quarantine) sorted by name.
func (s *Store) QuarantineFiles(id string) ([]ArtifactFile, error) {
	return listDirFiles(s.QuarantineDir(id))
}

func listDirFiles(dir string) ([]ArtifactFile, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return []ArtifactFile{}, nil
	}
	if err != nil {
		return nil, err
	}
	files := make([]ArtifactFile, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, err
		}
		files = append(files, ArtifactFile{Name: e.Name(), Size: info.Size()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].Name < files[j].Name })
	return files, nil
}

// SafeName reports whether name is a plain file name (no separators, no
// traversal) — the only names the HTTP artifact and quarantine fetchers
// accept.
func SafeName(name string) bool {
	return name != "" && name != "." && name != ".." &&
		!strings.ContainsAny(name, "/\\") && filepath.Base(name) == name
}
