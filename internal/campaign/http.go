package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"
)

// NewAPI builds the daemon's job API over a scheduler. Routes (all JSON
// unless noted):
//
//	POST /api/v1/jobs                       submit a JobSpec, 201 + job
//	GET  /api/v1/jobs                       list jobs (submission order)
//	GET  /api/v1/jobs/{id}                  one job's state
//	GET  /api/v1/jobs/{id}/wait             block until terminal (or ?timeout_sec=)
//	POST /api/v1/jobs/{id}/cancel           cancel queued or running job
//	GET  /api/v1/jobs/{id}/artifacts        list result artifacts
//	GET  /api/v1/jobs/{id}/artifacts/{name} fetch one artifact (bytes)
//	GET  /api/v1/jobs/{id}/quarantine       list quarantined fault inputs
//	GET  /api/v1/jobs/{id}/quarantine/{name} fetch one quarantine entry (bytes)
//	GET  /api/v1/healthz                    liveness + job counts
//
// Errors are {"error": "..."} with 400 for invalid specs, 404 for
// unknown jobs or files, 409 for lifecycle conflicts, 503 when shutting
// down.
func NewAPI(s *Scheduler) http.Handler {
	a := &api{s: s}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", a.submit)
	mux.HandleFunc("GET /api/v1/jobs", a.list)
	mux.HandleFunc("GET /api/v1/jobs/{id}", a.get)
	mux.HandleFunc("GET /api/v1/jobs/{id}/wait", a.wait)
	mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", a.cancel)
	mux.HandleFunc("GET /api/v1/jobs/{id}/artifacts", a.artifacts)
	mux.HandleFunc("GET /api/v1/jobs/{id}/artifacts/{name}", a.artifactFile)
	mux.HandleFunc("GET /api/v1/jobs/{id}/quarantine", a.quarantine)
	mux.HandleFunc("GET /api/v1/jobs/{id}/quarantine/{name}", a.quarantineFile)
	mux.HandleFunc("GET /api/v1/healthz", a.healthz)
	return mux
}

type api struct {
	s *Scheduler
}

// writeJSON emits v as a compact JSON body with trailing newline.
func writeJSON(w http.ResponseWriter, status int, v any) {
	raw, err := json.Marshal(v)
	if err != nil {
		// Everything we serialize is plain data; this is unreachable in
		// practice but must not crash the daemon.
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(raw, '\n'))
}

type errorBody struct {
	Error string `json:"error"`
}

// writeErr maps campaign errors onto HTTP statuses: client mistakes
// (malformed or invalid specs, unknown jobs, lifecycle conflicts) must
// never surface as 500s.
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrInvalidSpec):
		status = http.StatusBadRequest
	case errors.Is(err, ErrNoJob):
		status = http.StatusNotFound
	case errors.Is(err, ErrJobTerminal):
		status = http.StatusConflict
	case errors.Is(err, ErrSchedulerClosed):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func (a *api) submit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("decoding job spec: %v", err)})
		return
	}
	job, err := a.s.Submit(spec)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, job)
}

type jobList struct {
	Jobs []*Job `json:"jobs"`
}

func (a *api) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, jobList{Jobs: a.s.Jobs()})
}

func (a *api) get(w http.ResponseWriter, r *http.Request) {
	job, err := a.s.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// wait blocks until the job is terminal or the timeout elapses
// (?timeout_sec=, default 600), then returns the job's snapshot either
// way — callers inspect "state".
func (a *api) wait(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	timeout := 600 * time.Second
	if v := r.URL.Query().Get("timeout_sec"); v != "" {
		sec, err := strconv.ParseFloat(v, 64)
		if err != nil || sec <= 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("invalid timeout_sec %q", v)})
			return
		}
		timeout = time.Duration(sec * float64(time.Second))
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	job, err := a.s.Wait(ctx, id)
	if err == nil {
		writeJSON(w, http.StatusOK, job)
		return
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		// Timed out (or client went away): report where the job stands.
		if job, gerr := a.s.Get(id); gerr == nil {
			writeJSON(w, http.StatusOK, job)
			return
		}
	}
	writeErr(w, err)
}

func (a *api) cancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := a.s.Cancel(id); err != nil {
		writeErr(w, err)
		return
	}
	job, err := a.s.Get(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

type fileList struct {
	Files []ArtifactFile `json:"files"`
}

func (a *api) artifacts(w http.ResponseWriter, r *http.Request) {
	a.listFiles(w, r, a.s.Store().Artifacts)
}

func (a *api) quarantine(w http.ResponseWriter, r *http.Request) {
	a.listFiles(w, r, a.s.Store().QuarantineFiles)
}

func (a *api) listFiles(w http.ResponseWriter, r *http.Request, list func(string) ([]ArtifactFile, error)) {
	id := r.PathValue("id")
	if _, err := a.s.Get(id); err != nil {
		writeErr(w, err)
		return
	}
	files, err := list(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, fileList{Files: files})
}

func (a *api) artifactFile(w http.ResponseWriter, r *http.Request) {
	a.serveFile(w, r, a.s.Store().ArtifactsDir(r.PathValue("id")))
}

func (a *api) quarantineFile(w http.ResponseWriter, r *http.Request) {
	a.serveFile(w, r, a.s.Store().QuarantineDir(r.PathValue("id")))
}

// serveFile streams one named file from a job subdirectory, refusing
// anything that is not a plain file name directly inside it.
func (a *api) serveFile(w http.ResponseWriter, r *http.Request, dir string) {
	if _, err := a.s.Get(r.PathValue("id")); err != nil {
		writeErr(w, err)
		return
	}
	name := r.PathValue("name")
	if !SafeName(name) {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("invalid file name %q", name)})
		return
	}
	f, err := os.Open(filepath.Join(dir, name))
	if errors.Is(err, os.ErrNotExist) {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("no such file %q", name)})
		return
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	io.Copy(w, f)
}

type health struct {
	Status  string `json:"status"`
	Jobs    int    `json:"jobs"`
	Queued  int    `json:"queued"`
	Running int    `json:"running"`
}

func (a *api) healthz(w http.ResponseWriter, r *http.Request) {
	h := health{Status: "ok"}
	for _, job := range a.s.Jobs() {
		h.Jobs++
		switch job.State {
		case StateQueued:
			h.Queued++
		case StateRunning, StateCheckpointing:
			h.Running++
		}
	}
	writeJSON(w, http.StatusOK, h)
}
