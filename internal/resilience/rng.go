package resilience

import (
	"fmt"
	"math/rand"
)

// RNG is a serializable xoshiro256++ generator implementing
// math/rand.Source64. The fuzzer's mutation stream is drawn through it so
// a checkpoint can capture the generator mid-campaign and a resumed run
// continues bit-identically — math/rand's own sources hide their state.
//
// rand.Rand keeps no state of its own for the methods the fuzzer uses
// (Intn, Int63, Uint32, Float64, Shuffle all draw straight from the
// source), so restoring the source state is sufficient to restore the
// whole stream.
type RNG struct {
	s [4]uint64
}

// NewRNG seeds a generator (splitmix64 expansion of the seed, the
// xoshiro authors' recommended initialization).
func NewRNG(seed int64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator to the deterministic state for seed.
func (r *RNG) Seed(seed int64) {
	x := uint64(seed)
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
}

func rotl64(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next value of the xoshiro256++ sequence.
func (r *RNG) Uint64() uint64 {
	out := rotl64(r.s[0]+r.s[3], 23) + r.s[0]
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl64(r.s[3], 45)
	return out
}

// Int63 implements math/rand.Source.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// State returns the generator state for checkpointing.
func (r *RNG) State() [4]uint64 { return r.s }

// Restore replaces the generator state with a checkpointed one. The
// all-zero state is invalid for xoshiro (it is a fixed point) and is
// rejected as a corrupt checkpoint.
func (r *RNG) Restore(s [4]uint64) error {
	if s == ([4]uint64{}) {
		return fmt.Errorf("resilience: all-zero RNG state (corrupt checkpoint)")
	}
	r.s = s
	return nil
}

var _ rand.Source64 = (*RNG)(nil)
