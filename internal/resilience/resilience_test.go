package resilience

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRNGDeterministicAndRestorable(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverge at %d", i)
		}
	}

	// Burn part of the stream, snapshot, and check the restored generator
	// continues the identical sequence.
	r := NewRNG(7)
	for i := 0; i < 137; i++ {
		r.Uint64()
	}
	st := r.State()
	var want [64]uint64
	for i := range want {
		want[i] = r.Uint64()
	}
	fresh := NewRNG(0)
	if err := fresh.Restore(st); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got := fresh.Uint64(); got != want[i] {
			t.Fatalf("restored stream diverges at %d: %#x != %#x", i, got, want[i])
		}
	}

	if err := fresh.Restore([4]uint64{}); err == nil {
		t.Fatal("all-zero state accepted")
	}
}

func TestRNGThroughRandRand(t *testing.T) {
	// The fuzzer wraps the source in rand.Rand; verify the wrapper adds
	// no hidden state for the methods the fuzzer draws (so restoring the
	// source restores the stream).
	src := NewRNG(99)
	rr := rand.New(src)
	for i := 0; i < 57; i++ {
		rr.Intn(100)
		rr.Float64()
	}
	st := src.State()
	var want [32]int
	for i := range want {
		want[i] = rr.Intn(1 << 20)
	}
	src2 := NewRNG(0)
	if err := src2.Restore(st); err != nil {
		t.Fatal(err)
	}
	rr2 := rand.New(src2)
	for i := range want {
		if got := rr2.Intn(1 << 20); got != want[i] {
			t.Fatalf("rand.Rand stream diverges at %d", i)
		}
	}
}

func TestSafeCapturesPanic(t *testing.T) {
	rec := Safe(func() { panic("sail decoder crash: illegal encoding") })
	if rec == nil {
		t.Fatal("panic not captured")
	}
	if rec.Msg != "sail decoder crash: illegal encoding" {
		t.Fatalf("message mangled: %q", rec.Msg)
	}
	if !strings.Contains(rec.Stack, "resilience") {
		t.Fatalf("stack missing frames: %q", rec.Stack)
	}
	if rec := Safe(func() {}); rec != nil {
		t.Fatalf("spurious recovery: %+v", rec)
	}
}

func TestGuard(t *testing.T) {
	// Inline path: value through, panic captured.
	v, rec, to := Guard(0, func() int { return 41 })
	if v != 41 || rec != nil || to {
		t.Fatalf("inline: %v %v %v", v, rec, to)
	}
	_, rec, to = Guard(0, func() int { panic("boom") })
	if rec == nil || rec.Msg != "boom" || to {
		t.Fatalf("inline panic: %v %v", rec, to)
	}

	// Goroutine path: fast fn completes, wedge is reaped.
	v, rec, to = Guard(time.Second, func() int { return 7 })
	if v != 7 || rec != nil || to {
		t.Fatalf("guarded: %v %v %v", v, rec, to)
	}
	_, rec, to = Guard(time.Second, func() int { panic("guarded boom") })
	if rec == nil || rec.Msg != "guarded boom" || to {
		t.Fatalf("guarded panic: %v %v", rec, to)
	}
	release := make(chan struct{})
	defer close(release)
	_, rec, to = Guard(20*time.Millisecond, func() int { <-release; return 0 })
	if !to || rec != nil {
		t.Fatalf("wedge not reaped: %v %v", rec, to)
	}
}

func TestBreaker(t *testing.T) {
	b := &Breaker{Threshold: 3}
	b.RecordFault()
	b.RecordFault()
	b.RecordOK() // streak resets
	b.RecordFault()
	b.RecordFault()
	if b.Tripped() {
		t.Fatal("tripped below threshold")
	}
	b.RecordFault()
	if !b.Tripped() {
		t.Fatal("not tripped at threshold")
	}

	off := &Breaker{}
	for i := 0; i < 100; i++ {
		off.RecordFault()
	}
	if off.Tripped() {
		t.Fatal("disabled breaker tripped")
	}
	off.Trip()
	if !off.Tripped() {
		t.Fatal("explicit Trip ignored")
	}
}

// TestBreakerOnOpen: the transition hook fires exactly once, at the
// moment the breaker opens, however it opens.
func TestBreakerOnOpen(t *testing.T) {
	opens := 0
	b := &Breaker{Threshold: 2, OnOpen: func() { opens++ }}
	b.RecordFault()
	if opens != 0 {
		t.Fatal("OnOpen fired below threshold")
	}
	b.RecordFault()
	if opens != 1 {
		t.Fatalf("OnOpen fired %d times at threshold, want 1", opens)
	}
	b.RecordFault()
	b.Trip()
	if opens != 1 {
		t.Fatalf("OnOpen re-fired on an already-open breaker (%d times)", opens)
	}

	viaTrip := 0
	tb := &Breaker{OnOpen: func() { viaTrip++ }}
	tb.Trip()
	tb.Trip()
	if viaTrip != 1 {
		t.Fatalf("OnOpen via Trip fired %d times, want 1", viaTrip)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := WriteFileAtomic(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2" {
		t.Fatalf("got %q", got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp files left behind: %v", ents)
	}
}

func TestEnvelopeRoundTripAndValidation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	type payload struct {
		Execs uint64   `json:"execs"`
		RNG   []uint64 `json:"rng"`
	}
	in := payload{Execs: 1 << 62, RNG: []uint64{^uint64(0), 1}}
	if err := SaveJSON(path, "rvfuzz-checkpoint", 1, in); err != nil {
		t.Fatal(err)
	}

	var out payload
	ver, err := LoadJSON(path, "rvfuzz-checkpoint", 1, &out)
	if err != nil {
		t.Fatal(err)
	}
	if ver != 1 || out.Execs != in.Execs || out.RNG[0] != in.RNG[0] {
		t.Fatalf("round trip lost data: v%d %+v", ver, out)
	}

	if _, err := LoadJSON(path, "other-format", 1, &out); err == nil {
		t.Fatal("wrong format accepted")
	}
	if err := SaveJSON(path, "rvfuzz-checkpoint", 9, in); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadJSON(path, "rvfuzz-checkpoint", 1, &out); err == nil {
		t.Fatal("newer version accepted")
	}
}

func TestQuarantine(t *testing.T) {
	var nilq *Quarantine
	if err := nilq.Save([]byte{1}, "x"); err != nil {
		t.Fatal("nil quarantine must be a no-op")
	}
	if q := NewQuarantine(""); q != nil {
		t.Fatal("empty dir should disable quarantine")
	}

	dir := filepath.Join(t.TempDir(), "quarantine")
	q := NewQuarantine(dir)
	if err := q.Save([]byte{0x13, 0x00, 0x00, 0x00}, "panic: boom\nstack..."); err != nil {
		t.Fatal(err)
	}
	// Same input, same detail: idempotent overwrite.
	if err := q.Save([]byte{0x13, 0x00, 0x00, 0x00}, "panic: boom\nstack..."); err != nil {
		t.Fatal(err)
	}
	// Same input, different fault: second entry.
	if err := q.Save([]byte{0x13, 0x00, 0x00, 0x00}, "watchdog timeout"); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var bins, txts int
	for _, e := range ents {
		switch filepath.Ext(e.Name()) {
		case ".bin":
			bins++
		case ".txt":
			txts++
		}
	}
	if bins != 2 || txts != 2 {
		t.Fatalf("want 2 entries, got %d bins %d txts: %v", bins, txts, ents)
	}
}
