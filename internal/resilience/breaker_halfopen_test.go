package resilience

import (
	"reflect"
	"testing"
)

// trip opens a breaker by recording Threshold consecutive faults.
func trip(b *Breaker) {
	for i := 0; i < b.Threshold; i++ {
		b.RecordFault()
	}
}

// TestBreakerHalfOpenRecovers walks the open → half-open → closed path:
// after HalfOpenAfter denied runs a single probe is admitted, and its
// success closes the breaker for good.
func TestBreakerHalfOpenRecovers(t *testing.T) {
	var transitions [][2]BreakerState
	b := &Breaker{Threshold: 2, HalfOpenAfter: 3,
		OnTransition: func(from, to BreakerState) { transitions = append(transitions, [2]BreakerState{from, to}) }}
	trip(b)
	if b.State() != BreakerOpen || !b.Tripped() {
		t.Fatalf("state after trip = %v, want open", b.State())
	}
	for i := 0; i < 3; i++ {
		if b.Allow() {
			t.Fatalf("run %d allowed during cool-down", i)
		}
	}
	if !b.Allow() {
		t.Fatal("probe run denied after cool-down")
	}
	if b.State() != BreakerHalfOpen || !b.Tripped() {
		t.Fatalf("state during probe = %v (tripped=%t), want half-open/tripped", b.State(), b.Tripped())
	}
	// Runs racing the probe stay denied and do not burn cool-down.
	if b.Allow() {
		t.Fatal("second run allowed while probe in flight")
	}
	b.RecordOK()
	if b.State() != BreakerClosed || b.Tripped() {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker denied a run")
	}
	want := [][2]BreakerState{
		{BreakerClosed, BreakerOpen},
		{BreakerOpen, BreakerHalfOpen},
		{BreakerHalfOpen, BreakerClosed},
	}
	if !reflect.DeepEqual(transitions, want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
}

// TestBreakerHalfOpenReopens walks open → half-open → open: a failing
// probe re-opens the breaker and the cool-down starts over.
func TestBreakerHalfOpenReopens(t *testing.T) {
	opens := 0
	var transitions [][2]BreakerState
	b := &Breaker{Threshold: 2, HalfOpenAfter: 2, OnOpen: func() { opens++ },
		OnTransition: func(from, to BreakerState) { transitions = append(transitions, [2]BreakerState{from, to}) }}
	trip(b)
	if opens != 1 {
		t.Fatalf("OnOpen fired %d times at trip, want 1", opens)
	}
	b.Allow()
	b.Allow()
	if !b.Allow() {
		t.Fatal("probe denied after cool-down")
	}
	b.RecordFault()
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	if opens != 1 {
		t.Fatalf("OnOpen re-fired on probe failure (%d times); re-opens are OnTransition-only", opens)
	}
	// Cool-down restarted: two more denials before the next probe.
	if b.Allow() || b.Allow() {
		t.Fatal("cool-down did not restart after failed probe")
	}
	if !b.Allow() {
		t.Fatal("second probe denied after fresh cool-down")
	}
	b.RecordOK()
	if b.State() != BreakerClosed {
		t.Fatalf("state after recovered second probe = %v, want closed", b.State())
	}
	want := [][2]BreakerState{
		{BreakerClosed, BreakerOpen},
		{BreakerOpen, BreakerHalfOpen},
		{BreakerHalfOpen, BreakerOpen},
		{BreakerOpen, BreakerHalfOpen},
		{BreakerHalfOpen, BreakerClosed},
	}
	if !reflect.DeepEqual(transitions, want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
}

// TestBreakerStayOpenDefault: without HalfOpenAfter the historical
// behaviour is unchanged — open means open forever.
func TestBreakerStayOpenDefault(t *testing.T) {
	b := &Breaker{Threshold: 1}
	b.RecordFault()
	for i := 0; i < 100; i++ {
		if b.Allow() {
			t.Fatalf("stay-open breaker admitted run %d", i)
		}
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
}

// TestBreakerClosedAllow: Allow on a closed breaker is free and does not
// mutate anything.
func TestBreakerClosedAllow(t *testing.T) {
	b := &Breaker{Threshold: 3, HalfOpenAfter: 1}
	for i := 0; i < 10; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker denied a run")
		}
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed", b.State())
	}
	// A re-trip after a full recovery fires OnOpen again (new episode).
	opens := 0
	b.OnOpen = func() { opens++ }
	trip(b)
	b.Allow()
	if !b.Allow() {
		t.Fatal("probe denied")
	}
	b.RecordOK()
	trip(b)
	if opens != 2 {
		t.Fatalf("OnOpen fired %d times across two open episodes, want 2", opens)
	}
}
