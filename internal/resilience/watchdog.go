package resilience

import "time"

// Guard runs fn under the fault-isolation layer: a panic is captured as a
// Recovered record, and — when timeout is positive — a run that exceeds
// the wall-clock deadline is reaped (timedOut true) with the goroutine
// abandoned. The abandoned goroutine may still be mutating whatever
// simulator instance fn closed over, so on timedOut the caller MUST
// discard that instance and rebuild a fresh one before the next case.
//
// With timeout <= 0 the call runs inline on the caller's goroutine
// (panic capture only, no per-case goroutine cost).
func Guard[T any](timeout time.Duration, fn func() T) (out T, rec *Recovered, timedOut bool) {
	if timeout <= 0 {
		rec = Safe(func() { out = fn() })
		return out, rec, false
	}
	type result struct {
		v   T
		rec *Recovered
	}
	ch := make(chan result, 1)
	go func() {
		var r result
		r.rec = Safe(func() { r.v = fn() })
		ch <- r
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.v, r.rec, false
	case <-timer.C:
		return out, nil, true
	}
}
