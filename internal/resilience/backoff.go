package resilience

import "time"

// Backoff is a jittered exponential backoff policy: the delay doubles on
// every consecutive failure up to a cap, and each delay is scattered
// uniformly over [delay/2, delay) so a fleet of restarting adapters never
// thunders in lockstep. The jitter is drawn from the serializable RNG, so
// a checkpointed campaign replays the same delay sequence on resume —
// backoff never reads the wall clock (the caller sleeps; this type only
// computes durations), keeping the policy usable from determinism-bound
// packages.
//
// The zero value is not ready to use: construct with NewBackoff.
type Backoff struct {
	// Base is the un-jittered first delay.
	Base time.Duration
	// Max caps the un-jittered exponential growth.
	Max time.Duration

	attempt int
	rng     *RNG
}

// Backoff growth stops doubling past this attempt count; with any sane
// Base the cap in Max has long been reached, and bounding the shift keeps
// the arithmetic overflow-free.
const maxBackoffShift = 32

// DefaultBackoffBase and DefaultBackoffMax are the restart-delay policy
// used when a caller leaves Base/Max zero.
const (
	DefaultBackoffBase = 50 * time.Millisecond
	DefaultBackoffMax  = 2 * time.Second
)

// NewBackoff builds a policy with its own jitter stream. Zero base or max
// select the defaults; the seed determines the jitter sequence.
func NewBackoff(base, max time.Duration, seed int64) *Backoff {
	if base <= 0 {
		base = DefaultBackoffBase
	}
	if max <= 0 {
		max = DefaultBackoffMax
	}
	if max < base {
		max = base
	}
	return &Backoff{Base: base, Max: max, rng: NewRNG(seed)}
}

// Next returns the delay to wait before the next attempt and advances the
// attempt counter: Base for the first call, doubling (jittered) up to Max
// for each consecutive call until Reset.
func (b *Backoff) Next() time.Duration {
	d := b.Base
	shift := b.attempt
	if shift > maxBackoffShift {
		shift = maxBackoffShift
	}
	if shifted := d << shift; shifted > d && shifted < b.Max {
		d = shifted
	} else if shift > 0 {
		d = b.Max
	}
	if b.attempt < int(^uint(0)>>1) {
		b.attempt++
	}
	// Jitter over [d/2, d): full jitter halves the expected delay but
	// keeps the exponential envelope; half-floor jitter preserves a
	// meaningful minimum wait.
	if half := d / 2; half > 0 {
		d = half + time.Duration(b.rng.Uint64()%uint64(half))
	}
	return d
}

// Reset clears the consecutive-failure count after a success; the next
// delay starts from Base again. The jitter stream keeps advancing (it is
// part of the serialized state, not of the attempt count).
func (b *Backoff) Reset() { b.attempt = 0 }

// Attempt reports how many delays have been handed out since the last
// Reset.
func (b *Backoff) Attempt() int { return b.attempt }

// BackoffState is the serializable snapshot of a Backoff (checkpointing:
// a resumed campaign replays the same delay sequence).
type BackoffState struct {
	Attempt int       `json:"attempt"`
	RNG     [4]uint64 `json:"rng"`
}

// State snapshots the policy.
func (b *Backoff) State() BackoffState {
	return BackoffState{Attempt: b.attempt, RNG: b.rng.State()}
}

// RestoreState replaces the policy's progress with a snapshot.
func (b *Backoff) RestoreState(s BackoffState) error {
	if err := b.rng.Restore(s.RNG); err != nil {
		return err
	}
	b.attempt = s.Attempt
	return nil
}
