// Package resilience is the campaign-durability layer: the paper's Phase A
// is a long fuzzing campaign and Phase B a suite run across many
// simulators-under-test, and neither may die to a single misbehaving
// target or an operator Ctrl-C. The package provides the four mechanisms
// both phases share:
//
//   - fault isolation: Safe/Guard convert a panicking simulator into a
//     captured (message, stack) record instead of unwinding the worker;
//   - watchdog deadlines: Guard reaps a wedged run after a wall-clock
//     deadline on top of the instruction limit, abandoning the goroutine
//     so the worker continues (the caller must discard the poisoned
//     simulator instance);
//   - circuit breaking: a Breaker counts consecutive harness-level faults
//     from one target and opens after a threshold, so a truly broken
//     simulator degrades to skipped cells instead of burning the shard;
//   - durable state: WriteFileAtomic and the SaveJSON/LoadJSON envelope
//     implement versioned, crash-safe checkpoint files
//     (write-temp-then-rename, fsync'd), and Quarantine preserves the
//     inputs that triggered harness faults for triage.
//
// The serializable RNG lives here too: checkpoint/resume can only be
// bit-identical if the mutation stream is resumable, which math/rand's
// hidden source state does not allow.
package resilience

import (
	"fmt"
	"runtime/debug"
)

// Recovered describes one panic captured by the fault-isolation layer.
type Recovered struct {
	// Msg is the panic value, stringified (the "sail decoder crash: ..."
	// class of message must survive to the report).
	Msg string
	// Stack is the goroutine stack at the recovery point.
	Stack string
}

// Safe runs fn, converting a panic into a Recovered record. It returns
// nil when fn completes normally.
func Safe(fn func()) (rec *Recovered) {
	defer func() {
		if v := recover(); v != nil {
			rec = &Recovered{Msg: fmt.Sprint(v), Stack: string(debug.Stack())}
		}
	}()
	fn()
	return nil
}
