package resilience

import (
	"testing"
	"time"
)

// TestBackoffEnvelope: every delay lands in [envelope/2, envelope) where
// the envelope doubles from Base up to Max.
func TestBackoffEnvelope(t *testing.T) {
	base, max := 50*time.Millisecond, 2*time.Second
	b := NewBackoff(base, max, 1)
	envelope := base
	for i := 0; i < 12; i++ {
		d := b.Next()
		if d < envelope/2 || d >= envelope {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", i, d, envelope/2, envelope)
		}
		if envelope < max {
			envelope *= 2
			if envelope > max {
				envelope = max
			}
		}
	}
	if b.Attempt() != 12 {
		t.Fatalf("Attempt() = %d, want 12", b.Attempt())
	}
}

// TestBackoffReset: a success returns the policy to the Base envelope.
func TestBackoffReset(t *testing.T) {
	b := NewBackoff(100*time.Millisecond, time.Second, 7)
	for i := 0; i < 5; i++ {
		b.Next()
	}
	b.Reset()
	d := b.Next()
	if d < 50*time.Millisecond || d >= 100*time.Millisecond {
		t.Fatalf("post-Reset delay %v outside [50ms, 100ms)", d)
	}
}

// TestBackoffDeterministicPerSeed: the same seed yields the same delay
// sequence (campaign checkpoints replay it); different seeds diverge.
func TestBackoffDeterministicPerSeed(t *testing.T) {
	seq := func(seed int64) []time.Duration {
		b := NewBackoff(0, 0, seed)
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = b.Next()
		}
		return out
	}
	a, b := seq(42), seq(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := seq(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter sequences")
	}
}

// TestBackoffStateRoundTrip: a restored policy continues the exact delay
// sequence of the original.
func TestBackoffStateRoundTrip(t *testing.T) {
	b := NewBackoff(0, 0, 99)
	for i := 0; i < 3; i++ {
		b.Next()
	}
	st := b.State()
	want := []time.Duration{b.Next(), b.Next(), b.Next()}
	r := NewBackoff(0, 0, 0)
	if err := r.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if got := r.Next(); got != w {
			t.Fatalf("restored delay %d = %v, want %v", i, got, w)
		}
	}
	bad := st
	bad.RNG = [4]uint64{}
	if err := r.RestoreState(bad); err == nil {
		t.Fatal("all-zero RNG state accepted")
	}
}

// TestBackoffDefaults: zero Base/Max select the documented defaults and
// Max is clamped to at least Base.
func TestBackoffDefaults(t *testing.T) {
	b := NewBackoff(0, 0, 1)
	if b.Base != DefaultBackoffBase || b.Max != DefaultBackoffMax {
		t.Fatalf("defaults = (%v, %v), want (%v, %v)", b.Base, b.Max, DefaultBackoffBase, DefaultBackoffMax)
	}
	c := NewBackoff(time.Second, time.Millisecond, 1)
	if c.Max != time.Second {
		t.Fatalf("Max below Base not clamped: %v", c.Max)
	}
}
