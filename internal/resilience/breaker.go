package resilience

// Breaker is a consecutive-fault circuit breaker for one simulator
// instance: harness-level faults (reaped panics, watchdog timeouts,
// adapter protocol failures) increment a streak that any successful run
// resets; when the streak reaches Threshold the breaker opens and the
// caller marks the target's remaining work skipped instead of burning the
// shard on a target that will fault on every input.
//
// Recovery comes in two flavours. The historical default (HalfOpenAfter
// zero) stays open forever — right for in-process simulators, where a
// fault streak means the model itself is broken and re-running cannot
// heal it. With HalfOpenAfter set, the breaker counts the runs it denies
// while open and, after that many skips, admits a single probe run
// (half-open): a success closes the breaker, a failure re-opens it and
// the cool-down starts over. External subprocess adapters enable this —
// a kill-and-restart can genuinely heal an out-of-process target. The
// cool-down is measured in skipped runs, not wall time, so breaker
// behaviour stays deterministic for a fixed schedule.
//
// Modeled defects — a simulator outcome that reports Crashed or TimedOut
// through its own error handling — are measurements, not harness faults,
// and must not be recorded here (the paper's sail-riscv "crash" cells are
// findings, not infrastructure failures).
type Breaker struct {
	// Threshold is the consecutive-fault count that opens the breaker;
	// zero or negative disables it.
	Threshold int
	// HalfOpenAfter is the number of denied (skipped) runs after which an
	// open breaker admits one probe run. Zero or negative keeps the
	// historical stay-open behaviour.
	HalfOpenAfter int
	// OnOpen, when non-nil, is called at the moment the breaker
	// transitions from closed to open (threshold reached or Trip) — once
	// per open episode, so exactly once for the historical stay-open
	// breaker. It runs on the goroutine that recorded the fault; the
	// breaker itself is single-goroutine, so the hook needs its own
	// synchronization only if it touches shared state.
	OnOpen func()
	// OnTransition, when non-nil, observes every state change, including
	// re-opens after a failed probe (OnOpen only fires for the first).
	OnTransition func(from, to BreakerState)

	streak  int
	tripped bool
	denied  int  // runs denied since (re-)opening
	probing bool // a half-open probe run is in flight
}

// BreakerState is the breaker's position in the closed → open →
// half-open cycle.
type BreakerState uint8

const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

var breakerStateNames = [...]string{"closed", "open", "half-open"}

func (s BreakerState) String() string {
	if int(s) < len(breakerStateNames) {
		return breakerStateNames[s]
	}
	return "unknown"
}

// State reports the current breaker state.
func (b *Breaker) State() BreakerState {
	switch {
	case b.probing:
		return BreakerHalfOpen
	case b.tripped:
		return BreakerOpen
	}
	return BreakerClosed
}

// Allow reports whether the next run may proceed. Closed: always. Open:
// the denial is counted toward the half-open cool-down; once
// HalfOpenAfter runs have been skipped the next Allow admits a single
// probe (half-open). While a probe is in flight further runs are denied
// without advancing the cool-down; the probe's RecordOK/RecordFault
// resolves the state.
func (b *Breaker) Allow() bool {
	if !b.tripped {
		return true
	}
	if b.HalfOpenAfter <= 0 || b.probing {
		return false
	}
	if b.denied < b.HalfOpenAfter {
		b.denied++
		return false
	}
	b.probing = true
	b.transition(BreakerOpen, BreakerHalfOpen)
	return true
}

// RecordFault counts one harness-level fault. A fault while a half-open
// probe is in flight re-opens the breaker and restarts the cool-down.
func (b *Breaker) RecordFault() {
	if b.Threshold <= 0 {
		return
	}
	if b.probing {
		b.probing = false
		b.denied = 0
		b.transition(BreakerHalfOpen, BreakerOpen)
		return
	}
	b.streak++
	if b.streak >= b.Threshold && !b.tripped {
		b.open()
	}
}

// RecordOK resets the consecutive-fault streak; a successful half-open
// probe closes the breaker entirely.
func (b *Breaker) RecordOK() {
	if b.probing {
		b.probing = false
		b.tripped = false
		b.denied = 0
		b.streak = 0
		b.transition(BreakerHalfOpen, BreakerClosed)
		return
	}
	b.streak = 0
}

// Trip opens the breaker unconditionally (e.g. the instance could not be
// rebuilt after a wedge).
func (b *Breaker) Trip() {
	if !b.tripped {
		b.open()
	}
}

func (b *Breaker) open() {
	b.tripped = true
	b.probing = false
	b.denied = 0
	b.transition(BreakerClosed, BreakerOpen)
	if b.OnOpen != nil {
		b.OnOpen()
	}
}

func (b *Breaker) transition(from, to BreakerState) {
	if b.OnTransition != nil {
		b.OnTransition(from, to)
	}
}

// Tripped reports whether the breaker is open (a half-open probe in
// flight still counts as tripped: the target is not yet trusted again).
func (b *Breaker) Tripped() bool { return b.tripped }
