package resilience

// Breaker is a consecutive-fault circuit breaker for one simulator
// instance: harness-level faults (reaped panics, watchdog timeouts)
// increment a streak that any successful run resets; when the streak
// reaches Threshold the breaker opens and stays open, and the caller
// marks the target's remaining work skipped instead of burning the shard
// on a target that will fault on every input.
//
// Modeled defects — a simulator outcome that reports Crashed or TimedOut
// through its own error handling — are measurements, not harness faults,
// and must not be recorded here (the paper's sail-riscv "crash" cells are
// findings, not infrastructure failures).
type Breaker struct {
	// Threshold is the consecutive-fault count that opens the breaker;
	// zero or negative disables it.
	Threshold int
	// OnOpen, when non-nil, is called exactly once, at the moment the
	// breaker transitions to open (threshold reached or Trip). It runs on
	// the goroutine that recorded the fault; the breaker itself is
	// single-goroutine, so the hook needs its own synchronization only if
	// it touches shared state.
	OnOpen func()

	streak  int
	tripped bool
}

// RecordFault counts one harness-level fault.
func (b *Breaker) RecordFault() {
	if b.Threshold <= 0 {
		return
	}
	b.streak++
	if b.streak >= b.Threshold {
		b.open()
	}
}

// RecordOK resets the consecutive-fault streak.
func (b *Breaker) RecordOK() { b.streak = 0 }

// Trip opens the breaker unconditionally (e.g. the instance could not be
// rebuilt after a wedge).
func (b *Breaker) Trip() { b.open() }

func (b *Breaker) open() {
	if b.tripped {
		return
	}
	b.tripped = true
	if b.OnOpen != nil {
		b.OnOpen()
	}
}

// Tripped reports whether the breaker is open.
func (b *Breaker) Tripped() bool { return b.tripped }
