package resilience

// Breaker is a consecutive-fault circuit breaker for one simulator
// instance: harness-level faults (reaped panics, watchdog timeouts)
// increment a streak that any successful run resets; when the streak
// reaches Threshold the breaker opens and stays open, and the caller
// marks the target's remaining work skipped instead of burning the shard
// on a target that will fault on every input.
//
// Modeled defects — a simulator outcome that reports Crashed or TimedOut
// through its own error handling — are measurements, not harness faults,
// and must not be recorded here (the paper's sail-riscv "crash" cells are
// findings, not infrastructure failures).
type Breaker struct {
	// Threshold is the consecutive-fault count that opens the breaker;
	// zero or negative disables it.
	Threshold int

	streak  int
	tripped bool
}

// RecordFault counts one harness-level fault.
func (b *Breaker) RecordFault() {
	if b.Threshold <= 0 {
		return
	}
	b.streak++
	if b.streak >= b.Threshold {
		b.tripped = true
	}
}

// RecordOK resets the consecutive-fault streak.
func (b *Breaker) RecordOK() { b.streak = 0 }

// Trip opens the breaker unconditionally (e.g. the instance could not be
// rebuilt after a wedge).
func (b *Breaker) Trip() { b.tripped = true }

// Tripped reports whether the breaker is open.
func (b *Breaker) Tripped() bool { return b.tripped }
