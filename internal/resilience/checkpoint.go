package resilience

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data so a crash at any point leaves either the
// old file or the new one, never a torn mix: write to a temp file in the
// same directory, fsync it, rename over the target, fsync the directory.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Envelope is the versioned wrapper around every checkpoint state file.
// Format names the producer ("rvfuzz-checkpoint", "rvcompliance-
// checkpoint"), Version its schema revision; readers reject mismatched
// formats and versions newer than they understand.
type Envelope struct {
	Format  string          `json:"format"`
	Version int             `json:"version"`
	Payload json.RawMessage `json:"payload"`
}

// SaveJSON atomically writes payload under a versioned envelope.
func SaveJSON(path, format string, version int, payload any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(Envelope{Format: format, Version: version, Payload: raw}, "", "  ")
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, append(data, '\n'))
}

// LoadJSON reads an envelope written by SaveJSON, validating the format
// name and rejecting versions newer than maxVersion, and unmarshals the
// payload into out. It returns the stored version so callers can migrate
// older schemas.
func LoadJSON(path, format string, maxVersion int, out any) (version int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return 0, fmt.Errorf("resilience: %s: %w", path, err)
	}
	if env.Format != format {
		return 0, fmt.Errorf("resilience: %s: format %q, want %q", path, env.Format, format)
	}
	if env.Version > maxVersion {
		return 0, fmt.Errorf("resilience: %s: version %d newer than supported %d", path, env.Version, maxVersion)
	}
	if env.Version < 1 {
		return 0, fmt.Errorf("resilience: %s: invalid version %d", path, env.Version)
	}
	if err := json.Unmarshal(env.Payload, out); err != nil {
		return 0, fmt.Errorf("resilience: %s: payload: %w", path, err)
	}
	return env.Version, nil
}
