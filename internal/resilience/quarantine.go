package resilience

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
)

// Quarantine preserves inputs that triggered harness-level faults so they
// can be triaged after a campaign. Each fault produces a pair of files:
//
//	case-<in12>-<d4>.bin   the raw byte stream that was running
//	case-<in12>-<d4>.txt   the fault detail (panic message + stack, or
//	                       a watchdog-timeout note)
//
// where <in12> is the first 12 hex digits of the input's SHA-256 and <d4>
// the first 4 of the detail's, so the same input faulting two different
// ways yields two entries while exact duplicates overwrite idempotently.
// A nil *Quarantine or empty Dir disables saving.
type Quarantine struct {
	Dir string
}

// NewQuarantine returns a quarantine rooted at dir, or nil when dir is
// empty (quarantine disabled).
func NewQuarantine(dir string) *Quarantine {
	if dir == "" {
		return nil
	}
	return &Quarantine{Dir: dir}
}

// Save records one faulting input with its fault detail. Errors are
// returned for the caller to surface as warnings; a full disk must not
// kill the campaign the quarantine exists to protect.
func (q *Quarantine) Save(input []byte, detail string) error {
	if q == nil || q.Dir == "" {
		return nil
	}
	if err := os.MkdirAll(q.Dir, 0o755); err != nil {
		return err
	}
	in := sha256.Sum256(input)
	dt := sha256.Sum256([]byte(detail))
	base := fmt.Sprintf("case-%s-%s", hex.EncodeToString(in[:6]), hex.EncodeToString(dt[:2]))
	if err := WriteFileAtomic(filepath.Join(q.Dir, base+".bin"), input); err != nil {
		return err
	}
	return WriteFileAtomic(filepath.Join(q.Dir, base+".txt"), []byte(detail))
}
