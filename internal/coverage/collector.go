package coverage

import (
	"fmt"

	"rvnegtest/internal/exec"
	"rvnegtest/internal/hart"
	"rvnegtest/internal/isa"
)

// Options selects the coverage signals of a fuzzing configuration; the
// paper's v0..v3 configurations are combinations of these (section V-A).
type Options struct {
	// Edges enables simulator code coverage (executor semantic edges).
	Edges bool
	// Rules enables the custom rule coverage with the given set.
	Rules *RuleSet
	// HashN enables hash coverage with N points (0 disables it).
	HashN int
}

// V0 is code coverage only.
func V0() Options { return Options{Edges: true} }

// V1 adds the custom coverage rules of DefaultSpec. DefaultSpec is a
// compile-time constant validated by tests, so a parse failure is an
// invariant violation, not an input error — the panic is kept.
func V1() Options {
	cfg, err := ParseSpec(DefaultSpec)
	if err != nil {
		//rvlint:allow panicgate -- compile-time-constant spec; a parse failure is an invariant violation
		panic(fmt.Sprintf("coverage: built-in DefaultSpec failed to parse: %v", err))
	}
	return Options{Edges: true, Rules: NewRuleSet(cfg)}
}

// V2 adds 4096-point hash coverage to V1.
func V2() Options { o := V1(); o.HashN = 4096; return o }

// V3 adds 16384-point hash coverage to V1.
func V3() Options { o := V1(); o.HashN = 16384; return o }

// ByName returns a named configuration ("v0".."v3").
func ByName(name string) (Options, bool) {
	switch name {
	case "v0":
		return V0(), true
	case "v1":
		return V1(), true
	case "v2":
		return V2(), true
	case "v3":
		return V3(), true
	}
	return Options{}, false
}

// Collector implements exec.Hook, recording all enabled signals into one
// coverage map with disjoint ID regions.
type Collector struct {
	Map *Map

	opts     Options
	edgeBase uint32
	ruleBase uint32
	hashBase uint32
}

// NewCollector allocates the coverage map for the enabled signals.
func NewCollector(opts Options) *Collector {
	c := &Collector{opts: opts}
	size := uint32(0)
	if opts.Edges {
		c.edgeBase = size
		size += uint32(exec.EdgeSpace())
	}
	if opts.Rules != nil {
		c.ruleBase = size
		size += uint32(opts.Rules.NumPoints())
	}
	if opts.HashN > 0 {
		c.hashBase = size
		size += uint32(opts.HashN)
	}
	c.Map = NewMap(int(size))
	return c
}

// NumPoints returns the total number of coverage points across signals.
func (c *Collector) NumPoints() int { return c.Map.Size() }

// OnEdge implements exec.Hook.
func (c *Collector) OnEdge(edge uint32) {
	if c.opts.Edges {
		c.Map.Hit(c.edgeBase + edge)
	}
}

// OnInst implements exec.Hook.
func (c *Collector) OnInst(inst *isa.Inst, h *hart.Hart) {
	if c.opts.HashN > 0 {
		c.Map.Hit(c.hashBase + fnv1a32(inst.Raw)%uint32(c.opts.HashN))
	}
	if c.opts.Rules != nil {
		c.opts.Rules.Eval(inst, h, func(pt uint32) {
			c.Map.Hit(c.ruleBase + pt)
		})
	}
}

var _ exec.Hook = (*Collector)(nil)
