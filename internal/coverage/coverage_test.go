package coverage

import (
	"testing"
	"testing/quick"

	"rvnegtest/internal/exec"
	"rvnegtest/internal/hart"
	"rvnegtest/internal/isa"
)

func TestMapBuckets(t *testing.T) {
	m := NewMap(16)
	m.Hit(3)
	if !m.MergeNew() {
		t.Fatal("first hit must be new coverage")
	}
	m.Hit(3)
	if m.MergeNew() {
		t.Fatal("same count again must not be new")
	}
	// Two hits fall into a different bucket.
	m.Hit(3)
	m.Hit(3)
	if !m.MergeNew() {
		t.Fatal("count bucket change must be new")
	}
	// 2 again: nothing new.
	m.Hit(3)
	m.Hit(3)
	if m.MergeNew() {
		t.Fatal("repeated bucket must not be new")
	}
	// A different point is new.
	m.Hit(5)
	if !m.MergeNew() {
		t.Fatal("new point must be new coverage")
	}
	if m.PointsCovered() != 2 {
		t.Errorf("points covered = %d", m.PointsCovered())
	}
	if m.BucketBits() != 3 {
		t.Errorf("bucket bits = %d", m.BucketBits())
	}
}

func TestBucketBoundaries(t *testing.T) {
	// Counts within one bucket are not new; crossing a boundary is.
	bounds := []uint32{1, 2, 3, 4, 8, 16, 32, 128}
	m := NewMap(4)
	hits := uint32(0)
	for _, b := range bounds {
		for hits < b {
			m.Hit(0)
			hits++
		}
		if !m.MergeNew() {
			t.Errorf("count %d must open a new bucket", b)
		}
		hits = 0 // counts reset after merge; replay up to the next bound
		for i := uint32(0); i < b; i++ {
			m.Hit(0)
		}
		if m.MergeNew() {
			t.Errorf("repeat of count %d must not be new", b)
		}
		hits = 0
	}
}

func TestDiscardRun(t *testing.T) {
	m := NewMap(8)
	m.Hit(1)
	m.DiscardRun()
	if m.MergeNew() {
		t.Fatal("discarded run must not contribute coverage")
	}
	m.Hit(1)
	if !m.MergeNew() {
		t.Fatal("fresh hit after discard must be new")
	}
	m.Reset()
	if m.PointsCovered() != 0 || m.BucketBits() != 0 {
		t.Fatal("reset must clear everything")
	}
	m.Hit(1)
	if !m.MergeNew() {
		t.Fatal("hit after reset must be new")
	}
}

func TestMapIgnoresOutOfRange(t *testing.T) {
	m := NewMap(4)
	m.Hit(4)
	m.Hit(1 << 30)
	if m.MergeNew() {
		t.Fatal("out-of-range hits must be ignored")
	}
}

func TestParseSpecDefault(t *testing.T) {
	cfg, err := ParseSpec(DefaultSpec)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.RDZero || !cfg.RDRS1 || !cfg.Regs3 || !cfg.Rel || !cfg.ImmRel {
		t.Errorf("families missing: %+v", cfg)
	}
	if len(cfg.Values) != 5 || len(cfg.ImmValues) != 5 {
		t.Errorf("value lists: %v %v", cfg.Values, cfg.ImmValues)
	}
	if cfg.Values[0] != -1<<31 || cfg.Values[1] != 1<<31-1 || cfg.Values[2] != -1 {
		t.Errorf("values = %v", cfg.Values)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"nonsense line",
		"unknown: x",
		"values: 12zz",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q): want error", bad)
		}
	}
	// Comments and empty lines are fine.
	if _, err := ParseSpec("# comment\n\nrd: zero\n"); err != nil {
		t.Errorf("comment spec: %v", err)
	}
}

func TestRuleSetPointCountMatchesPaperScale(t *testing.T) {
	rs := NewRuleSet(mustSpec(t))
	n := rs.NumPoints()
	// The paper reports 2281 additional coverage points for its rule set;
	// ours must land in the same ballpark (the exact number depends on
	// how the opcode set is enumerated).
	if n < 1200 || n > 3500 {
		t.Errorf("rule points = %d, expected paper-scale (~2281)", n)
	}
	t.Logf("rule coverage points: %d (paper: 2281)", n)
}

func mustSpec(t *testing.T) RuleConfig {
	t.Helper()
	cfg, err := ParseSpec(DefaultSpec)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestRuleEval(t *testing.T) {
	rs := NewRuleSet(mustSpec(t))
	h := hart.New(isa.RV32I)
	collect := func(inst isa.Inst) map[uint8]bool {
		kinds := map[uint8]bool{}
		pts := rs.points[inst.Op]
		rs.Eval(&inst, h, func(id uint32) {
			for i, pid := range rs.ids[inst.Op] {
				if pid == id {
					kinds[pts[i].kind] = true
				}
			}
		})
		return kinds
	}

	// add x0, x1, x2: RD==x0, all regs different, values equal (both 0).
	h.X[1], h.X[2] = 0, 0
	k := collect(isa.Inst{Op: isa.OpADD, Rd: 0, Rs1: 1, Rs2: 2})
	for _, want := range []uint8{ruleRDZero, ruleRDNeRS1, rule3AllNe, ruleRelEq} {
		if !k[want] {
			t.Errorf("add x0,x1,x2: missing kind %d (got %v)", want, k)
		}
	}
	if k[ruleRDNonzero] || k[ruleRelLt] {
		t.Errorf("add x0,x1,x2: spurious kinds %v", k)
	}

	// add x5, x5, x5: RD==RS1, all equal.
	k = collect(isa.Inst{Op: isa.OpADD, Rd: 5, Rs1: 5, Rs2: 5})
	if !k[rule3AllEq] || !k[ruleRDEqRS1] || !k[ruleRDNonzero] {
		t.Errorf("add x5,x5,x5: %v", k)
	}

	// Value corners: rs1 = MIN.
	h.X[7] = 0x80000000
	h.X[8] = 1
	k = collect(isa.Inst{Op: isa.OpADD, Rd: 1, Rs1: 7, Rs2: 8})
	if !k[ruleRS1Val] || !k[ruleRS2Val] || !k[ruleRelLt] {
		t.Errorf("corner values: %v", k)
	}

	// Immediate corner: addi with imm = -2048 (the I-format MIN).
	k = collect(isa.Inst{Op: isa.OpADDI, Rd: 1, Rs1: 2, Imm: -2048})
	if !k[ruleImmVal] {
		t.Errorf("imm corner: %v", k)
	}
	// Immediate relation: imm > rs1 value.
	h.X[2] = 0xfffffff0 // -16
	k = collect(isa.Inst{Op: isa.OpADDI, Rd: 1, Rs1: 2, Imm: 5})
	if !k[ruleImmRelGt] || k[ruleImmRelLt] {
		t.Errorf("imm relation: %v", k)
	}
}

func TestRuleEvalNoPointsForBareOps(t *testing.T) {
	rs := NewRuleSet(mustSpec(t))
	h := hart.New(isa.RV32I)
	inst := isa.Inst{Op: isa.OpECALL}
	count := 0
	rs.Eval(&inst, h, func(uint32) { count++ })
	if count != 0 {
		t.Errorf("ecall hit %d rule points", count)
	}
}

func TestCollectorRegions(t *testing.T) {
	c := NewCollector(V3())
	if c.NumPoints() <= 16384 {
		t.Errorf("v3 points = %d, must exceed the hash region alone", c.NumPoints())
	}
	// Distinct signals must not alias: an edge hit and a hash hit land on
	// different IDs.
	c.OnEdge(0)
	inst := isa.Inst{Op: isa.OpADD, Rd: 1, Rs1: 2, Rs2: 3, Raw: 0x003100b3}
	h := hart.New(isa.RV32I)
	c.OnInst(&inst, h)
	if !c.Map.MergeNew() {
		t.Fatal("hits must merge as new")
	}
	if c.Map.PointsCovered() < 2 {
		t.Errorf("points covered = %d, want >= 2 (edge + hash at least)", c.Map.PointsCovered())
	}
}

func TestConfigNames(t *testing.T) {
	for _, n := range []string{"v0", "v1", "v2", "v3"} {
		if _, ok := ByName(n); !ok {
			t.Errorf("ByName(%q) failed", n)
		}
	}
	if _, ok := ByName("v9"); ok {
		t.Error("ByName(v9) must fail")
	}
	v0, v1, v2, v3 := NewCollector(V0()), NewCollector(V1()), NewCollector(V2()), NewCollector(V3())
	if !(v0.NumPoints() < v1.NumPoints() && v1.NumPoints() < v2.NumPoints() && v2.NumPoints() < v3.NumPoints()) {
		t.Errorf("config sizes not increasing: %d %d %d %d",
			v0.NumPoints(), v1.NumPoints(), v2.NumPoints(), v3.NumPoints())
	}
	if v2.NumPoints()-v1.NumPoints() != 4096 || v3.NumPoints()-v1.NumPoints() != 16384 {
		t.Errorf("hash regions wrong: v1=%d v2=%d v3=%d", v1.NumPoints(), v2.NumPoints(), v3.NumPoints())
	}
}

func TestHashStability(t *testing.T) {
	f := func(w uint32) bool { return fnv1a32(w) == fnv1a32(w) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// A one-bit flip changes the hash (not a proof, a smoke check over
	// many samples).
	diff := 0
	for w := uint32(0); w < 1000; w++ {
		if fnv1a32(w) != fnv1a32(w^1) {
			diff++
		}
	}
	if diff < 990 {
		t.Errorf("hash too weak: %d/1000 differ", diff)
	}
}

var _ exec.Hook = (*Collector)(nil)

// TestRunFootprintMatchesMergeNew: replaying footprints through
// MergeFootprint in run order must reproduce MergeNew's greedy decisions
// and final bitmap exactly.
func TestRunFootprintMatchesMergeNew(t *testing.T) {
	runs := [][]uint32{
		{1, 1, 2},       // novel: points 1 (x2), 2
		{1, 1, 2},       // identical: nothing new
		{1, 2, 2, 2, 3}, // new point 3, new bucket for 2
		{},              // empty run
		{3, 3, 3, 3},    // new bucket for 3
	}
	serial := NewMap(8)
	replay := NewMap(8)
	var footprints [][]RunPoint
	for _, run := range runs {
		scratch := NewMap(8) // per-"worker" map, as in the parallel replay
		for _, id := range run {
			scratch.Hit(id)
		}
		footprints = append(footprints, scratch.RunFootprint())
		scratch.DiscardRun()

		for _, id := range run {
			serial.Hit(id)
		}
		want := serial.MergeNew()
		got := replay.MergeFootprint(footprints[len(footprints)-1])
		if got != want {
			t.Errorf("run %v: MergeFootprint=%v MergeNew=%v", run, got, want)
		}
	}
	if serial.BucketBits() != replay.BucketBits() {
		t.Errorf("bucket bits: serial %d, replay %d", serial.BucketBits(), replay.BucketBits())
	}
	if got, want := serial.PointsCovered(), replay.PointsCovered(); got != want {
		t.Errorf("points covered: serial %d, replay %d", want, got)
	}
}

// TestRunFootprintLeavesRunPending: taking a footprint must not consume
// the run — MergeNew afterwards still works.
func TestRunFootprintLeavesRunPending(t *testing.T) {
	m := NewMap(4)
	m.Hit(1)
	m.Hit(1)
	fp := m.RunFootprint()
	if len(fp) != 1 || fp[0].ID != 1 || fp[0].Bucket == 0 {
		t.Fatalf("footprint: %+v", fp)
	}
	if !m.MergeNew() {
		t.Error("MergeNew after RunFootprint must still merge the run")
	}
	if m.RunFootprint() != nil {
		t.Error("footprint of an empty pending run must be nil")
	}
	// Out-of-range IDs in a foreign footprint are ignored.
	small := NewMap(2)
	if small.MergeFootprint([]RunPoint{{ID: 99, Bucket: 1}}) {
		t.Error("out-of-range footprint point must not merge")
	}
}

func TestFrontierRoundTrip(t *testing.T) {
	m := NewMap(64)
	for i := 0; i < 10; i++ {
		m.Hit(uint32(i))
		m.Hit(uint32(i)) // count 2 -> second bucket bit for these points
	}
	m.Hit(3)
	m.MergeNew()

	fr := m.Frontier()
	bits := m.BucketBits()

	m2 := NewMap(64)
	m2.Hit(63) // pending run state must be discarded by RestoreFrontier
	if err := m2.RestoreFrontier(fr); err != nil {
		t.Fatal(err)
	}
	if m2.BucketBits() != bits {
		t.Fatalf("bits %d != %d after restore", m2.BucketBits(), bits)
	}
	// Replaying an input the frontier has seen must not be novel; a new
	// point must be.
	for i := 0; i < 10; i++ {
		m2.Hit(uint32(i))
		m2.Hit(uint32(i))
	}
	m2.Hit(3)
	if m2.MergeNew() {
		t.Fatal("already-seen coverage reported novel after restore")
	}
	m2.Hit(40)
	if !m2.MergeNew() {
		t.Fatal("new point not novel after restore")
	}

	// Frontier must be a copy, not an alias.
	fr[0] = 0xff
	if m.Frontier()[0] == 0xff {
		t.Fatal("Frontier aliases internal state")
	}

	if err := m2.RestoreFrontier(make([]byte, 3)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}
