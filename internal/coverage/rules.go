package coverage

import (
	"fmt"
	"strconv"
	"strings"

	"rvnegtest/internal/hart"
	"rvnegtest/internal/isa"
)

// RuleConfig selects which rule families the specification enables. The
// paper provides the custom coverage "through an external specification
// file"; ParseSpec reads the textual form below, and DefaultSpec
// reproduces the paper's rule set (section IV-E).
type RuleConfig struct {
	RDZero    bool    // RD == x0 / RD != x0
	RDRS1     bool    // RD == RS1 / RD != RS1
	Regs3     bool    // three-register relations (all equal / all different / two equal)
	Rel       bool    // Reg[RS1] OP Reg[RS2] for OP in {==, !=, <, >}
	Values    []int64 // corner values for Reg[RS*] (the paper: MIN, MAX, -1, 0, 1)
	ImmRel    bool    // imm OP Reg[RS1]
	ImmValues []int64 // corner values for immediates
}

// DefaultSpec is the specification used for the paper's v1..v3
// configurations.
const DefaultSpec = `# custom coverage specification (paper section IV-E)
rd:        zero nonzero
rdrs1:     eq ne
regs3:     alleq allne someeq
rel:       eq ne lt gt
values:    min max -1 0 1
immrel:    eq ne lt gt
immvalues: min max -1 0 1
`

// ParseSpec reads a rule specification.
func ParseSpec(src string) (RuleConfig, error) {
	var cfg RuleConfig
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		key, rest, ok := strings.Cut(line, ":")
		if !ok {
			return cfg, fmt.Errorf("coverage: spec line %d: missing ':'", lineNo+1)
		}
		fields := strings.Fields(rest)
		switch strings.TrimSpace(key) {
		case "rd":
			cfg.RDZero = contains(fields, "zero") || contains(fields, "nonzero")
		case "rdrs1":
			cfg.RDRS1 = contains(fields, "eq") || contains(fields, "ne")
		case "regs3":
			cfg.Regs3 = len(fields) > 0
		case "rel":
			cfg.Rel = len(fields) > 0
		case "values":
			vs, err := parseValues(fields)
			if err != nil {
				return cfg, fmt.Errorf("coverage: spec line %d: %v", lineNo+1, err)
			}
			cfg.Values = vs
		case "immrel":
			cfg.ImmRel = len(fields) > 0
		case "immvalues":
			vs, err := parseValues(fields)
			if err != nil {
				return cfg, fmt.Errorf("coverage: spec line %d: %v", lineNo+1, err)
			}
			cfg.ImmValues = vs
		default:
			return cfg, fmt.Errorf("coverage: spec line %d: unknown family %q", lineNo+1, key)
		}
	}
	return cfg, nil
}

func contains(fields []string, s string) bool {
	for _, f := range fields {
		if f == s {
			return true
		}
	}
	return false
}

func parseValues(fields []string) ([]int64, error) {
	var out []int64
	for _, f := range fields {
		switch f {
		case "min":
			out = append(out, int64(-1)<<31)
		case "max":
			out = append(out, 1<<31-1)
		default:
			v, err := strconv.ParseInt(f, 0, 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q", f)
			}
			out = append(out, v)
		}
	}
	return out, nil
}

// rule kinds evaluated per instruction.
const (
	ruleRDZero uint8 = iota
	ruleRDNonzero
	ruleRDEqRS1
	ruleRDNeRS1
	rule3AllEq
	rule3AllNe
	rule3SomeEq
	rule3RDEqRS2
	rule3RS1EqRS2
	ruleRelEq
	ruleRelNe
	ruleRelLt
	ruleRelGt
	ruleRS1Val // arg = value index
	ruleRS2Val
	ruleImmVal
	ruleImmRelEq
	ruleImmRelNe
	ruleImmRelLt
	ruleImmRelGt
)

type rulePoint struct {
	kind uint8
	arg  uint8
}

// RuleSet is the compiled coverage specification: per operation, the list
// of applicable coverage points with globally unique IDs.
type RuleSet struct {
	cfg    RuleConfig
	points [][]rulePoint // indexed by Op, parallel ids
	ids    [][]uint32
	total  int
}

// NewRuleSet compiles a configuration against the instruction database.
func NewRuleSet(cfg RuleConfig) *RuleSet {
	rs := &RuleSet{cfg: cfg}
	n := isa.NumOps()
	rs.points = make([][]rulePoint, n)
	rs.ids = make([][]uint32, n)
	next := uint32(0)
	add := func(op isa.Op, kind, arg uint8) {
		rs.points[op] = append(rs.points[op], rulePoint{kind, arg})
		rs.ids[op] = append(rs.ids[op], next)
		next++
	}
	for i := range isa.Instructions {
		in := &isa.Instructions[i]
		fl := in.Flags
		intRD := fl.Is(isa.FlagWritesRD)
		hasRD := intRD || fl.Is(isa.FlagFPRd)
		hasRS1 := fl.Is(isa.FlagReadsRS1) || fl.Is(isa.FlagFPRs1)
		hasRS2 := fl.Is(isa.FlagReadsRS2) || fl.Is(isa.FlagFPRs2)
		intRS1 := fl.Is(isa.FlagReadsRS1)
		intRS2 := fl.Is(isa.FlagReadsRS2)
		hasImm := in.Fmt == isa.FmtI || in.Fmt == isa.FmtIShift || in.Fmt == isa.FmtS ||
			in.Fmt == isa.FmtB || in.Fmt == isa.FmtU || in.Fmt == isa.FmtJ

		if cfg.RDZero && intRD {
			add(in.Op, ruleRDZero, 0)
			add(in.Op, ruleRDNonzero, 0)
		}
		if cfg.RDRS1 && intRD && hasRS1 && !fl.Is(isa.FlagFPRs1) {
			add(in.Op, ruleRDEqRS1, 0)
			add(in.Op, ruleRDNeRS1, 0)
		}
		if cfg.Regs3 && hasRD && hasRS1 && hasRS2 {
			add(in.Op, rule3AllEq, 0)
			add(in.Op, rule3AllNe, 0)
			add(in.Op, rule3SomeEq, 0)
			add(in.Op, rule3RDEqRS2, 0)
			add(in.Op, rule3RS1EqRS2, 0)
		}
		if cfg.Rel && intRS1 && intRS2 {
			add(in.Op, ruleRelEq, 0)
			add(in.Op, ruleRelNe, 0)
			add(in.Op, ruleRelLt, 0)
			add(in.Op, ruleRelGt, 0)
		}
		if intRS1 {
			for vi := range cfg.Values {
				add(in.Op, ruleRS1Val, uint8(vi))
			}
		}
		if intRS2 {
			for vi := range cfg.Values {
				add(in.Op, ruleRS2Val, uint8(vi))
			}
		}
		if hasImm {
			for vi := range cfg.ImmValues {
				add(in.Op, ruleImmVal, uint8(vi))
			}
			if cfg.ImmRel && intRS1 {
				add(in.Op, ruleImmRelEq, 0)
				add(in.Op, ruleImmRelNe, 0)
				add(in.Op, ruleImmRelLt, 0)
				add(in.Op, ruleImmRelGt, 0)
			}
		}
	}
	rs.total = int(next)
	return rs
}

// NumPoints returns the total number of coverage points the specification
// defines (the paper reports 2281 for its rule set).
func (rs *RuleSet) NumPoints() int { return rs.total }

// immCorner maps a configured corner value onto the immediate's own range
// (MIN/MAX refer to the format's extremes; the paper uses "similar rules
// for immediates").
func immCorner(v int64, fmtKind isa.Format) int32 {
	const i32min = -1 << 31
	const i32max = 1<<31 - 1
	switch fmtKind {
	case isa.FmtI, isa.FmtS:
		if v == i32min {
			return -2048
		}
		if v == i32max {
			return 2047
		}
	case isa.FmtIShift:
		if v == i32min {
			return 0
		}
		if v == i32max {
			return 31
		}
	case isa.FmtB:
		if v == i32min {
			return -4096
		}
		if v == i32max {
			return 4094
		}
	case isa.FmtU:
		if v == i32min {
			return int32(-1) << 31
		}
		if v == i32max {
			return int32(0x7ffff000)
		}
	case isa.FmtJ:
		if v == i32min {
			return -1 << 20
		}
		if v == i32max {
			return 1<<20 - 2
		}
	}
	return int32(v)
}

// Eval reports the rule points the instruction hits, invoking hit for each.
func (rs *RuleSet) Eval(inst *isa.Inst, h *hart.Hart, hit func(uint32)) {
	pts := rs.points[inst.Op]
	if len(pts) == 0 {
		return
	}
	ids := rs.ids[inst.Op]
	info := inst.Info()
	var rv1, rv2 int32
	if info.Flags.Is(isa.FlagReadsRS1) {
		rv1 = int32(h.ReadX(inst.Rs1))
	}
	if info.Flags.Is(isa.FlagReadsRS2) {
		rv2 = int32(h.ReadX(inst.Rs2))
	}
	for i, p := range pts {
		ok := false
		switch p.kind {
		case ruleRDZero:
			ok = inst.Rd == 0
		case ruleRDNonzero:
			ok = inst.Rd != 0
		case ruleRDEqRS1:
			ok = inst.Rd == inst.Rs1
		case ruleRDNeRS1:
			ok = inst.Rd != inst.Rs1
		case rule3AllEq:
			ok = inst.Rd == inst.Rs1 && inst.Rs1 == inst.Rs2
		case rule3AllNe:
			ok = inst.Rd != inst.Rs1 && inst.Rs1 != inst.Rs2 && inst.Rd != inst.Rs2
		case rule3RDEqRS2:
			ok = inst.Rd == inst.Rs2
		case rule3RS1EqRS2:
			ok = inst.Rs1 == inst.Rs2
		case rule3SomeEq:
			eq := 0
			if inst.Rd == inst.Rs1 {
				eq++
			}
			if inst.Rs1 == inst.Rs2 {
				eq++
			}
			if inst.Rd == inst.Rs2 {
				eq++
			}
			ok = eq == 1
		case ruleRelEq:
			ok = rv1 == rv2
		case ruleRelNe:
			ok = rv1 != rv2
		case ruleRelLt:
			ok = rv1 < rv2
		case ruleRelGt:
			ok = rv1 > rv2
		case ruleRS1Val:
			ok = int64(rv1) == corner32(rs.cfg.Values[p.arg])
		case ruleRS2Val:
			ok = int64(rv2) == corner32(rs.cfg.Values[p.arg])
		case ruleImmVal:
			ok = inst.Imm == immCorner(rs.cfg.ImmValues[p.arg], info.Fmt)
		case ruleImmRelEq:
			ok = inst.Imm == rv1
		case ruleImmRelNe:
			ok = inst.Imm != rv1
		case ruleImmRelLt:
			ok = inst.Imm < rv1
		case ruleImmRelGt:
			ok = inst.Imm > rv1
		}
		if ok {
			hit(ids[i])
		}
	}
}

// corner32 interprets a configured corner value as a signed 32-bit value.
func corner32(v int64) int64 { return int64(int32(v)) }
