// Package coverage implements the three coverage signals that guide the
// fuzzer (paper sections III-B and IV-E):
//
//   - simulator code coverage: the semantic (operation, outcome) edges the
//     executor emits, bucketized AFL/libFuzzer-style so different hit
//     counts of the same edge count as new coverage;
//   - hash coverage: a hash of every fetched instruction word modulo a
//     configurable number N of coverage points — cheap, generic variance;
//   - custom rule coverage: structural and value predicates per
//     instruction (RD=x0, RD=RS1, Reg[RS1] OP Reg[RS2] against corner
//     values, immediate rules), compiled from a small specification.
package coverage

import (
	"fmt"
	mathbits "math/bits"
)

// Map is a bucketized hit-count coverage map. Per-run counts are folded
// into a persistent bucket bitmap; an input is interesting if it sets a
// bucket bit that no earlier input set (the libFuzzer/AFL notion of new
// coverage).
type Map struct {
	counts  []uint32
	global  []uint8
	touched []uint32
	bits    int
}

// NewMap allocates a map with the given number of coverage points.
func NewMap(size int) *Map {
	return &Map{counts: make([]uint32, size), global: make([]uint8, size)}
}

// Size returns the number of coverage points.
func (m *Map) Size() int { return len(m.counts) }

// Hit records one hit of a coverage point for the current run.
func (m *Map) Hit(id uint32) {
	if int(id) >= len(m.counts) {
		return
	}
	if m.counts[id] == 0 {
		m.touched = append(m.touched, id)
	}
	m.counts[id]++
}

// bucketBit maps a hit count to its libFuzzer-style bucket bit.
func bucketBit(n uint32) uint8 {
	switch {
	case n == 0:
		return 0
	case n == 1:
		return 1 << 0
	case n == 2:
		return 1 << 1
	case n == 3:
		return 1 << 2
	case n <= 7:
		return 1 << 3
	case n <= 15:
		return 1 << 4
	case n <= 31:
		return 1 << 5
	case n <= 127:
		return 1 << 6
	}
	return 1 << 7
}

// MergeNew folds the current run's counts into the persistent map and
// resets them, reporting whether any new bucket bit appeared.
func (m *Map) MergeNew() bool {
	novel := false
	for _, id := range m.touched {
		b := bucketBit(m.counts[id])
		if m.global[id]&b == 0 {
			m.global[id] |= b
			m.bits++
			novel = true
		}
		m.counts[id] = 0
	}
	m.touched = m.touched[:0]
	return novel
}

// RunPoint is one coverage point the current run touched, paired with the
// bucket bit its hit count maps to.
type RunPoint struct {
	ID     uint32
	Bucket uint8
}

// RunFootprint captures the current run's coverage as sparse
// (point, bucket-bit) pairs without folding it into the persistent map.
// A footprint depends only on the run itself, so runs replayed
// concurrently on independent maps yield identical footprints; feeding
// them to MergeFootprint in case order reproduces MergeNew's greedy
// semantics exactly. The run stays pending: follow with MergeNew or
// DiscardRun.
func (m *Map) RunFootprint() []RunPoint {
	if len(m.touched) == 0 {
		return nil
	}
	fp := make([]RunPoint, 0, len(m.touched))
	for _, id := range m.touched {
		fp = append(fp, RunPoint{ID: id, Bucket: bucketBit(m.counts[id])})
	}
	return fp
}

// MergeFootprint folds a footprint (from RunFootprint, possibly taken on
// a different map of the same size) into the persistent bitmap,
// reporting whether any new bucket bit appeared — the replayed
// counterpart of MergeNew.
func (m *Map) MergeFootprint(fp []RunPoint) bool {
	novel := false
	for _, p := range fp {
		if int(p.ID) >= len(m.global) {
			continue
		}
		if m.global[p.ID]&p.Bucket == 0 {
			m.global[p.ID] |= p.Bucket
			m.bits++
			novel = true
		}
	}
	return novel
}

// DiscardRun drops the current run's counts without merging.
func (m *Map) DiscardRun() {
	for _, id := range m.touched {
		m.counts[id] = 0
	}
	m.touched = m.touched[:0]
}

// BucketBits returns the total number of bucket bits set so far (the
// fuzzer's coverage progress measure).
func (m *Map) BucketBits() int { return m.bits }

// PointsCovered returns how many coverage points have been hit at least
// once.
func (m *Map) PointsCovered() int {
	n := 0
	for _, g := range m.global {
		if g != 0 {
			n++
		}
	}
	return n
}

// Frontier returns a copy of the persistent bucket bitmap — the coverage
// frontier a checkpoint must preserve for a resumed campaign to make the
// same novelty decisions.
func (m *Map) Frontier() []byte {
	out := make([]byte, len(m.global))
	copy(out, m.global)
	return out
}

// RestoreFrontier replaces the persistent bitmap with a checkpointed one,
// recomputing the bucket-bit total and discarding any pending run.
func (m *Map) RestoreFrontier(frontier []byte) error {
	if len(frontier) != len(m.global) {
		return fmt.Errorf("coverage: frontier size %d, map size %d", len(frontier), len(m.global))
	}
	copy(m.global, frontier)
	n := 0
	for _, g := range m.global {
		n += mathbits.OnesCount8(g)
	}
	m.bits = n
	m.DiscardRun()
	return nil
}

// Reset clears all persistent coverage.
func (m *Map) Reset() {
	for i := range m.global {
		m.global[i] = 0
	}
	for _, id := range m.touched {
		m.counts[id] = 0
	}
	m.touched = m.touched[:0]
	m.bits = 0
}

// fnv1a32 hashes an instruction word (the paper uses std::hash<uint32_t>;
// any well-mixed hash serves).
func fnv1a32(w uint32) uint32 {
	h := uint32(2166136261)
	for i := 0; i < 4; i++ {
		h ^= w & 0xff
		h *= 16777619
		w >>= 8
	}
	return h
}
