// Coveragecampaign reproduces the shape of the paper's Fig. 4 at laptop
// scale: the four coverage configurations v0..v3 fuzz with an identical
// execution budget, and the test-case growth curves are printed as an
// ASCII chart (note the logarithmic execution axis, as in the paper).
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"rvnegtest"
)

const budget = 150000

func main() {
	results, err := rvnegtest.GrowthExperiment(budget, 0, 2020)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Fuzzer execution information for different settings (%d executions)\n\n", budget)
	maxCases := 0
	for _, r := range results {
		if r.Stats.TestCases > maxCases {
			maxCases = r.Stats.TestCases
		}
	}

	// Sample each curve on a logarithmic execution grid.
	const cols = 64
	grid := make([]uint64, cols)
	for i := range grid {
		grid[i] = uint64(math.Pow(float64(budget), float64(i+1)/cols))
	}
	for ri := len(results) - 1; ri >= 0; ri-- {
		r := results[ri]
		fmt.Printf("%s: number test-cases=%d (%.0f exec/s, %d coverage points)\n",
			r.Name, r.Stats.TestCases, r.Stats.ExecsPerSec, r.Stats.CovPoints)
	}
	fmt.Println("\ntest cases vs executions (log scale on x):")
	const rows = 16
	chart := make([][]byte, rows)
	for i := range chart {
		chart[i] = []byte(strings.Repeat(" ", cols))
	}
	for ri, r := range results {
		mark := byte('0' + ri) // '0' for v0 ... '3' for v3
		ci := 0
		cases := 0
		for _, p := range r.Stats.Trace {
			for ci < cols && grid[ci] < p.Execs {
				plot(chart, ci, cases, maxCases, rows, mark)
				ci++
			}
			cases = p.TestCases
		}
		for ; ci < cols; ci++ {
			plot(chart, ci, cases, maxCases, rows, mark)
		}
	}
	for i := rows - 1; i >= 0; i-- {
		label := ""
		if i == rows-1 {
			label = fmt.Sprintf("%6d", maxCases)
		} else if i == 0 {
			label = fmt.Sprintf("%6d", 0)
		} else {
			label = strings.Repeat(" ", 6)
		}
		fmt.Printf("%s |%s\n", label, chart[i])
	}
	fmt.Printf("%s +%s\n", strings.Repeat(" ", 6), strings.Repeat("-", cols))
	fmt.Printf("%s  1%sexecutions (log)%s%d\n", strings.Repeat(" ", 6),
		strings.Repeat(" ", cols/2-10), strings.Repeat(" ", cols/2-12), budget)
	fmt.Println("\ncurves: 0=v0 (code cov)  1=v1 (+rules)  2=v2 (+hash 4096)  3=v3 (+hash 16384)")
}

func plot(chart [][]byte, col, cases, maxCases, rows int, mark byte) {
	if maxCases == 0 {
		return
	}
	row := cases * (rows - 1) / maxCases
	chart[row][col] = mark
}
