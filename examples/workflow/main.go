// Workflow demonstrates the full production flow a compliance group would
// run with this library:
//
//  1. fuzz a negative-testing suite (in parallel) and minimize it,
//  2. export golden reference signatures to disk,
//  3. verify simulators against the on-disk signatures (the cross-machine
//     compliance exchange),
//  4. triage one finding down to its minimal reproducer,
//  5. repeat the pipeline continuously with fresh seeds.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"rvnegtest"
	"rvnegtest/internal/compliance"
	"rvnegtest/internal/fuzz"
	"rvnegtest/internal/isa"
	"rvnegtest/internal/sim"
	"rvnegtest/internal/template"
)

func main() {
	// 1. Parallel campaign + minimization.
	cfg := rvnegtest.DefaultFuzzConfig()
	cfg.Seed = 7
	cases, stats, err := fuzz.ParallelCampaign(cfg, 4, 25000)
	if err != nil {
		log.Fatal(err)
	}
	var execs uint64
	for _, s := range stats {
		execs += s.Execs
	}
	suite := &rvnegtest.Suite{Cases: cases, Origin: "workflow example"}
	fmt.Printf("1. fuzzed %d executions on 4 workers -> %d minimized test cases\n", execs, len(cases))

	// 2. Export the golden signatures (per configuration).
	dir, err := os.MkdirTemp("", "rvnegtest-sigs-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	for _, c := range []isa.Config{isa.RV32I, isa.RV32IMC} {
		if err := compliance.ExportReferenceSignatures(suite, sim.OVPSim, c, dir, nil); err != nil {
			log.Fatal(err)
		}
	}
	n := 0
	_ = filepath.WalkDir(dir, func(string, os.DirEntry, error) error { n++; return nil })
	fmt.Printf("2. exported reference signatures (%d files under %s)\n", n-1, dir)

	// 3. Verify a simulator against the on-disk references.
	var firstFinding []byte
	var findingSim *sim.Variant
	var findingCfg isa.Config
	for _, c := range []isa.Config{isa.RV32I, isa.RV32IMC} {
		for _, v := range sim.UnderTest {
			cell, err := compliance.VerifyAgainstSignatures(suite, v, c, dir)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("3. %-8v %-12s %s\n", c, v.Name, cell)
			if firstFinding == nil && len(cell.Examples) > 0 {
				firstFinding = suite.Cases[cell.Examples[0]]
				findingSim, findingCfg = v, c
			}
		}
	}

	// 4. Triage: shrink the first finding to its minimal reproducer.
	if firstFinding != nil {
		p := template.Platform{Layout: template.DefaultLayout, Cfg: findingCfg}
		ref, err := sim.New(sim.OVPSim, p)
		if err != nil {
			log.Fatal(err)
		}
		sut, err := sim.New(findingSim, p)
		if err != nil {
			log.Fatal(err)
		}
		min := compliance.MinimizeCase(firstFinding, ref, sut, nil)
		fmt.Printf("4. first %s finding minimized: %d -> %d bytes (%x)\n",
			findingSim.Name, len(firstFinding), len(min), min)
	}

	// 5. Continuous mode: two more rounds with fresh seeds.
	res, err := rvnegtest.Continuous(cfg, 2, 20000, nil)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range res.Rounds {
		fmt.Printf("5. continuous round %d (seed %d): %d new findings\n", i+1, r.Seed, r.NewFindings)
	}
}
