// Negativetesting demonstrates how the seeded simulator defects (the bug
// classes the paper found in real RISC-V simulators) surface as signature
// mismatches: one hand-crafted trigger per defect is run on the affected
// simulator model and on the reference, and the differing signature words
// are explained. It ends with the paper's section VI proposal: a
// don't-care rule that conditionally relaxes the comparison.
package main

import (
	"fmt"
	"log"

	"rvnegtest/internal/isa"
	"rvnegtest/internal/sig"
	"rvnegtest/internal/sim"
	"rvnegtest/internal/template"
)

func words(ws ...uint32) []byte {
	var out []byte
	for _, w := range ws {
		out = append(out, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	return out
}

func enc(i isa.Inst) uint32 { return isa.MustEncode(i) }

func wordName(i int) string {
	switch {
	case i < 30:
		return fmt.Sprintf("x%d", i)
	case i == 30:
		return "mcause"
	case i == 31:
		return "sentinel"
	default:
		return fmt.Sprintf("f%d", (i-32)/2)
	}
}

func demo(v *sim.Variant, cfg isa.Config, title string, bs []byte) {
	fmt.Printf("== %s ==\n", title)
	fmt.Printf("   simulator: %s, ISA: %v, bytestream: %x\n", v.Name, cfg, bs)
	p := template.Platform{Layout: template.DefaultLayout, Cfg: cfg}
	refSim, err := sim.New(sim.Reference, p)
	if err != nil {
		log.Fatal(err)
	}
	sut, err := sim.New(v, p)
	if err != nil {
		log.Fatal(err)
	}
	ref := refSim.Run(bs)
	got := sut.Run(bs)
	switch {
	case got.Crashed:
		fmt.Printf("   %s CRASHED: %s\n\n", v.Name, got.CrashMsg)
		return
	case got.TimedOut:
		fmt.Printf("   %s DID NOT TERMINATE (instruction limit reached)\n\n", v.Name)
		return
	}
	d := sig.Diff(ref.Signature, got.Signature)
	if len(d) == 0 {
		fmt.Printf("   signatures match (no defect triggered)\n\n")
		return
	}
	for _, w := range d {
		fmt.Printf("   word %2d (%-8s): reference %08x, %s %08x\n",
			w, wordName(w), ref.Signature[w], v.Name, got.Signature[w])
	}
	fmt.Println()
}

func main() {
	demo(sim.Spike, isa.RV32I,
		"Spike: ECALL in the test body corrupts the signature",
		words(0x00000073))

	demo(sim.VP, isa.RV32I,
		"VP: loose ECALL decode mask accepts an invalid encoding",
		words(0x00000073|5<<7))

	demo(sim.VP, isa.RV32IMC,
		"VP: reserved compressed c.lwsp x0 executed instead of trapping",
		[]byte{0x02, 0x40, 0, 0})

	demo(sim.Grift, isa.RV32I,
		"GRIFT: link register written although the jump target is misaligned",
		words(enc(isa.Inst{Op: isa.OpJAL, Rd: 1, Imm: 6})))

	demo(sim.Grift, isa.RV32IMC,
		"GRIFT: RV32IMC target misconfigured to RV32GC accepts FADD.S",
		words(enc(isa.Inst{Op: isa.OpFADDS, Rd: 1, Rs1: 2, Rs2: 3, RM: 0})))

	demo(sim.Grift, isa.RV32GC,
		"GRIFT: SC.W succeeds without a pending LR.W reservation",
		words(enc(isa.Inst{Op: isa.OpSCW, Rd: 5, Rs1: 30, Rs2: 1})))

	demo(sim.Sail, isa.RV32I,
		"sail-riscv: invalid funct7 accepted as a valid ADD",
		words(enc(isa.Inst{Op: isa.OpADD, Rd: 5, Rs1: 1, Rs2: 2})|0x13<<25))

	demo(sim.Sail, isa.RV32IMC,
		"sail-riscv: malformed compressed pattern crashes the decoder",
		[]byte{0x00, 0x84, 0, 0})

	demo(sim.OVPSim, isa.RV32I,
		"riscvOVPsim (the reference!): custom opcode accepted as a NOP",
		words(0x0000400b))

	// Section VI, direction 3: a don't-care companion to the reference
	// signature. Here the Spike defect is deliberately masked.
	fmt.Println("== don't-care extension (section VI) ==")
	p := template.Platform{Layout: template.DefaultLayout, Cfg: isa.RV32I}
	refSim, _ := sim.New(sim.Reference, p)
	spike, _ := sim.New(sim.Spike, p)
	bs := words(0x00000073)
	ref, got := refSim.Run(bs), spike.Run(bs)
	dc := &sig.DontCare{Rules: []sig.Rule{{Word: 26, Kind: sig.CondAlways}}}
	fmt.Printf("   strict comparison:      %d mismatching words\n",
		len(sig.Compare(ref.Signature, got.Signature, nil)))
	fmt.Printf("   with don't-care (x26):  %d mismatching words\n",
		len(sig.Compare(ref.Signature, got.Signature, dc)))
	fmt.Printf("   don't-care file:\n%s", indent(dc.Format()))
}

func indent(s string) string {
	return "      " + s
}
