// Quickstart: generate a small negative-testing compliance suite with the
// coverage-guided fuzzer and run it across the modelled RISC-V simulators,
// printing a Table-I style mismatch summary.
package main

import (
	"fmt"
	"log"

	"rvnegtest"
)

func main() {
	// Phase A: fuzz a test suite (v3 coverage configuration, 100k
	// executions — a laptop-scale version of the paper's 30-minute run).
	cfg := rvnegtest.DefaultFuzzConfig()
	cfg.Seed = 42
	suite, stats, err := rvnegtest.GenerateSuite(cfg, 100000, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Phase A: %d executions (%.0f/s), %d dropped by the filter, %d test cases collected\n\n",
		stats.Execs, stats.ExecsPerSec, stats.Dropped, stats.TestCases)

	// Phase B: run the suite on every simulator under test, comparing
	// signatures against the riscvOVPsim reference.
	report, err := rvnegtest.RunCompliance(suite, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.Render())
	fmt.Println("\nFindings by mismatch category:")
	fmt.Print(report.BugFindings())
}
