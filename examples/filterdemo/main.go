// Filterdemo walks the exact example of the paper's Fig. 2 through the
// static-analysis filter: an 8-instruction bytestream whose three
// control-flow paths are all accepted, although it contains a forbidden
// WFI and an instruction dirtying x30 — both unreachable. It then shows
// nearby variants that the filter rejects, with the drop reason.
package main

import (
	"fmt"

	"rvnegtest/internal/filter"
	"rvnegtest/internal/isa"
)

func words(ws ...uint32) []byte {
	var out []byte
	for _, w := range ws {
		out = append(out, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	return out
}

func enc(i isa.Inst) uint32 { return isa.MustEncode(i) }

func show(f *filter.Filter, name string, bs []byte) {
	fmt.Printf("== %s ==\n", name)
	for pc := 0; pc+4 <= len(bs); pc += 4 {
		w := uint32(bs[pc]) | uint32(bs[pc+1])<<8 | uint32(bs[pc+2])<<16 | uint32(bs[pc+3])<<24
		fmt.Printf("  %2d: %s\n", pc, isa.Disasm(isa.Ref.Decode32(w)))
	}
	fmt.Printf("  -> %v\n\n", f.Check(bs))
}

func main() {
	f := &filter.Filter{}

	fig2 := words(
		enc(isa.Inst{Op: isa.OpADD, Rd: 31, Rs1: 2, Rs2: 3}),    //  0: marks x31 dirty
		enc(isa.Inst{Op: isa.OpJAL, Rd: 2, Imm: 20}),            //  4: to 24; marks x2 dirty
		enc(isa.Inst{Op: isa.OpWFI}),                            //  8: forbidden, but unreachable
		enc(isa.Inst{Op: isa.OpADD, Rd: 30, Rs1: 2, Rs2: 3}),    // 12: would dirty x30; unreachable
		enc(isa.Inst{Op: isa.OpBLT, Rs1: 30, Rs2: 31, Imm: 12}), // 16: fork to 28 and 20
		0xffffffff, // 20: illegal -> path accepted
		enc(isa.Inst{Op: isa.OpBEQ, Rs1: 1, Rs2: 2, Imm: -8}), // 24: fork to 16 and 28
		enc(isa.Inst{Op: isa.OpLW, Rd: 5, Rs1: 30, Imm: -16}), // 28: needs x30 clean
	)
	show(f, "Fig. 2 program (accepted, 3 paths)", fig2)

	// Variant 1: make the WFI reachable by removing the jump.
	v1 := append([]byte(nil), fig2...)
	copy(v1[4:], words(enc(isa.Inst{Op: isa.OpADDI, Rd: 2, Imm: 1})))
	show(f, "variant: WFI reachable", v1)

	// Variant 2: make the x30-dirtying ADD reachable before the LW.
	v2 := words(
		enc(isa.Inst{Op: isa.OpADD, Rd: 30, Rs1: 2, Rs2: 3}),
		enc(isa.Inst{Op: isa.OpLW, Rd: 5, Rs1: 30, Imm: -16}),
	)
	show(f, "variant: dirty address register", v2)

	// Variant 3: a backward branch that can loop.
	v3 := words(
		enc(isa.Inst{Op: isa.OpADDI, Rd: 1, Rs1: 1, Imm: 1}),
		enc(isa.Inst{Op: isa.OpBEQ, Rs1: 0, Rs2: 0, Imm: -4}),
	)
	show(f, "variant: potential loop", v3)

	// Variant 4: an unaligned load immediate.
	v4 := words(enc(isa.Inst{Op: isa.OpLW, Rd: 5, Rs1: 30, Imm: 2}))
	show(f, "variant: unaligned immediate", v4)
}
