// Command rvcsr runs the fine-grained CSR compliance tests of the paper's
// section VI proposal: per-CSR directed tests selected dynamically by the
// target platform's capabilities, compared under don't-care rules, with a
// coverage metric over the (CSR, access-kind) surface.
//
// Examples:
//
//	rvcsr -isa RV32GC                       # all simulators, full platform
//	rvcsr -isa RV32I -hardwired-counters    # capability selection in action
//	rvcsr -coverage                         # print the coverage metric
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"rvnegtest/internal/csrtest"
	"rvnegtest/internal/isa"
	"rvnegtest/internal/sim"
	"rvnegtest/internal/template"
)

func main() {
	var (
		isaName   = flag.String("isa", "RV32GC", "ISA configuration")
		hardwired = flag.Bool("hardwired-counters", false, "platform hardwires mcycle/minstret to zero")
		covOnly   = flag.Bool("coverage", false, "print the CSR coverage metric and exit")
		verbose   = flag.Bool("v", false, "print per-test results even when passing")
	)
	flag.Parse()

	cfg, err := isa.ParseConfig(*isaName)
	if err != nil {
		fatalf("%v", err)
	}
	tests := csrtest.Suite(cfg)

	if *covOnly {
		covered, total, detail := csrtest.Coverage(tests, cfg)
		fmt.Printf("CSR coverage for %v: %d/%d (CSR, access) points\n", cfg, covered, total)
		var keys []string
		for k := range detail {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %s\n", k)
		}
		return
	}

	p := template.Platform{Layout: template.DefaultLayout, Cfg: cfg, CountersHardwired: *hardwired}
	caps := csrtest.Caps(p)
	fmt.Printf("platform: %v, capabilities: counters=%v fpu=%v\n", cfg,
		caps&csrtest.CapCounters != 0, caps&csrtest.CapFPU != 0)
	fmt.Printf("suite: %d tests, %d selected for this platform\n\n",
		len(tests), len(csrtest.Select(tests, caps)))

	fail := false
	for _, v := range sim.All {
		if !v.Supports(cfg) {
			fmt.Printf("%-12s /\n", v.Name)
			continue
		}
		results, err := csrtest.Run(v, p, tests)
		if err != nil {
			fatalf("%v", err)
		}
		passed, skipped, failed := 0, 0, 0
		for _, r := range results {
			switch {
			case r.Skipped:
				skipped++
			case r.Crashed || r.TimedOut || len(r.Mismatch) > 0:
				failed++
				fail = true
				fmt.Printf("%-12s FAIL %s (%+v)\n", v.Name, r.Test, r)
			default:
				passed++
				if *verbose {
					fmt.Printf("%-12s pass %s\n", v.Name, r.Test)
				}
			}
		}
		fmt.Printf("%-12s %d passed, %d skipped (capability), %d failed\n", v.Name, passed, skipped, failed)
	}
	if fail {
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rvcsr: "+format+"\n", args...)
	os.Exit(1)
}
