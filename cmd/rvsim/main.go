// Command rvsim runs a single test case (a hex bytestream, a suite entry,
// or an assembled ELF) on one simulator model and prints the signature.
//
// Examples:
//
//	rvsim -sim reference -isa RV32I -hex 33005500
//	rvsim -sim GRIFT -isa RV32IMC -suite suite.txt -case 3
//	rvsim -sim VP -isa RV32I -hex 73000000 -trace
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"

	"rvnegtest"
	"rvnegtest/internal/compliance"
	"rvnegtest/internal/hart"
	"rvnegtest/internal/isa"
	"rvnegtest/internal/sig"
	"rvnegtest/internal/sim"
	"rvnegtest/internal/template"
)

func main() {
	var (
		simName   = flag.String("sim", "reference", "simulator model")
		isaName   = flag.String("isa", "RV32GC", "ISA configuration")
		hexStream = flag.String("hex", "", "bytestream as hex")
		suitePath = flag.String("suite", "", "take the bytestream from this suite file")
		caseIdx   = flag.Int("case", 0, "suite case index")
		trace     = flag.Bool("trace", false, "print the disassembled bytestream")
		execTrace = flag.Bool("exec-trace", false, "print every executed instruction (full run, template included)")
		diffWith  = flag.String("diff", "", "also run this simulator and print signature differences")
		minimize  = flag.Bool("minimize", false, "with -diff: shrink the bytestream while the divergence persists")
	)
	flag.Parse()

	var bs []byte
	switch {
	case *hexStream != "":
		var err error
		bs, err = hex.DecodeString(*hexStream)
		if err != nil {
			fatalf("bad -hex: %v", err)
		}
	case *suitePath != "":
		suite, err := rvnegtest.LoadSuite(*suitePath)
		if err != nil {
			fatalf("%v", err)
		}
		if *caseIdx < 0 || *caseIdx >= len(suite.Cases) {
			fatalf("case %d out of range (suite has %d)", *caseIdx, len(suite.Cases))
		}
		bs = suite.Cases[*caseIdx]
	default:
		fatalf("need -hex BYTES or -suite FILE")
	}

	cfg, err := isa.ParseConfig(*isaName)
	if err != nil {
		fatalf("%v", err)
	}
	v, ok := sim.ByName(*simName)
	if !ok {
		fatalf("unknown simulator %q (have: reference, riscvOVPsim, Spike, VP, GRIFT, sail-riscv)", *simName)
	}

	if *trace {
		fmt.Println("bytestream:")
		for pc := 0; pc < len(bs); {
			var inst isa.Inst
			if pc+1 < len(bs) && bs[pc]&3 == 3 && pc+4 <= len(bs) {
				w := uint32(bs[pc]) | uint32(bs[pc+1])<<8 | uint32(bs[pc+2])<<16 | uint32(bs[pc+3])<<24
				inst = isa.Ref.Decode32(w)
			} else if pc+2 <= len(bs) {
				inst = isa.Ref.DecodeC(uint16(bs[pc]) | uint16(bs[pc+1])<<8)
			} else {
				break
			}
			fmt.Printf("  +%-3d %s\n", pc, isa.Disasm(inst))
			pc += int(inst.Size)
		}
	}

	if *execTrace {
		s := newSim(v, cfg)
		fmt.Printf("execution trace (%s):\n", v.Name)
		out := s.RunHooked(bs, tracer{})
		fmt.Printf("(%d instructions)\n", out.Insts)
	}

	out := run(v, cfg, bs)
	printOutcome(v.Name, out)
	if *diffWith != "" {
		v2, ok := sim.ByName(*diffWith)
		if !ok {
			fatalf("unknown simulator %q", *diffWith)
		}
		if *minimize {
			ref := newSim(v, cfg)
			sut := newSim(v2, cfg)
			min := compliance.MinimizeCase(bs, ref, sut, nil)
			if len(min) < len(bs) {
				fmt.Printf("minimized reproducer: %x (%d -> %d bytes)\n", min, len(bs), len(min))
				bs = min
				out = run(v, cfg, bs)
			} else {
				fmt.Println("no smaller reproducer found")
			}
		}
		out2 := run(v2, cfg, bs)
		printOutcome(v2.Name, out2)
		if out.Signature != nil && out2.Signature != nil {
			d := sig.Diff(out.Signature, out2.Signature)
			if len(d) == 0 {
				fmt.Println("signatures MATCH")
			} else {
				fmt.Printf("signatures DIFFER at words %v\n", d)
				for _, w := range d {
					fmt.Printf("  word %2d (%s): %08x vs %08x\n", w, wordName(w), out.Signature[w], out2.Signature[w])
				}
			}
		}
	}
}

func newSim(v *sim.Variant, cfg isa.Config) *sim.Simulator {
	s, err := sim.New(v, template.Platform{Layout: template.DefaultLayout, Cfg: cfg})
	if err != nil {
		fatalf("%v", err)
	}
	return s
}

func run(v *sim.Variant, cfg isa.Config, bs []byte) sim.Outcome {
	return newSim(v, cfg).Run(bs)
}

// tracer prints every executed instruction through the coverage hook.
type tracer struct{}

func (tracer) OnInst(inst *isa.Inst, h *hart.Hart) {
	fmt.Printf("  %08x: %s\n", h.PC, isa.Disasm(*inst))
}

func (tracer) OnEdge(uint32) {}

func printOutcome(name string, out sim.Outcome) {
	switch {
	case out.Crashed:
		fmt.Printf("%s: CRASH after %d instructions: %s\n", name, out.Insts, out.CrashMsg)
	case out.TimedOut:
		fmt.Printf("%s: TIMEOUT after %d instructions\n", name, out.Insts)
	default:
		fmt.Printf("%s: completed in %d instructions; signature:\n", name, out.Insts)
		for i, w := range out.Signature {
			fmt.Printf("  %2d %-8s %08x\n", i, wordName(i), w)
		}
	}
}

func wordName(i int) string {
	switch {
	case i < 30:
		return fmt.Sprintf("x%d", i)
	case i == 30:
		return "mcause"
	case i == 31:
		return "sentinel"
	default:
		fp := i - 32
		return fmt.Sprintf("f%d.%c", fp/2, "lh"[fp%2])
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rvsim: "+format+"\n", args...)
	os.Exit(1)
}
