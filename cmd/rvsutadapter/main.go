// Command rvsutadapter is the reference external-SUT adapter: it serves
// a built-in simulator model over the internal/sut wire protocol on
// stdin/stdout, so a compliance campaign can exercise the full
// out-of-process path (spawn, handshake, per-run watchdog, restart)
// against a target whose signatures are known to match the in-process
// columns byte for byte.
//
// It doubles as the harness's fault-injection target: -misbehave selects
// a deliberate protocol violation (wedge, crash, kill -9, garbage
// frames, truncated signature) and -after delays it past the first N
// runs, which is how the CI smoke proves every failure mode degrades
// gracefully instead of killing the campaign.
//
// Examples:
//
//	rvcompliance -generate 10000 -sut 'ext=rvsutadapter'
//	rvcompliance -generate 10000 -sut 'vp=rvsutadapter -variant VP'
//	rvcompliance -generate 10000 -sut 'bad=rvsutadapter -misbehave crash -after 100'
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rvnegtest/internal/sim"
	"rvnegtest/internal/sut"
)

func main() {
	var (
		variant   = flag.String("variant", "reference", "built-in simulator model to serve")
		version   = flag.String("announce-version", "", "version string announced in the handshake")
		misbehave = flag.String("misbehave", "", "fault injection: hang|crash|kill|garbage|truncate")
		after     = flag.Int("after", 0, "serve this many RUN requests faithfully before misbehaving")
	)
	flag.Parse()

	v, ok := sim.ByName(*variant)
	if !ok {
		var names []string
		for _, m := range sim.All {
			names = append(names, m.Name)
		}
		fatalf("unknown variant %q (have %s)", *variant, strings.Join(names, ", "))
	}
	mb, err := sut.ParseMisbehave(*misbehave)
	if err != nil {
		fatalf("%v", err)
	}

	h := sut.NewSimHandler(v)
	h.Version = *version
	if err := sut.Serve(os.Stdin, os.Stdout, h, sut.ServeOpts{Misbehave: mb, After: *after}); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rvsutadapter: "+format+"\n", args...)
	os.Exit(1)
}
