// Command rvlint is rvnegtest's determinism-and-invariants linter: a
// multichecker over the internal/lint analyzer suite (mapdet,
// wallclock, globalrand, cloneshallow, panicgate).
//
// Two modes:
//
//	rvlint [patterns...]         standalone; loads packages via `go list`
//	                             (defaults to ./...) and analyzes them
//	go vet -vettool=rvlint ./... driven by the go command; rvlint speaks
//	                             the vet command-line protocol (-V=full,
//	                             -flags, unit .cfg files) — this is how
//	                             CI runs the suite (scripts/lint.sh)
//
// Exit status: 0 clean, 1 findings, 2 operational error.
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"strings"

	"rvnegtest/internal/lint"
)

func main() {
	args := os.Args[1:]

	// The vet protocol probes first: `rvlint -V=full` must describe
	// the executable for build caching, `rvlint -flags` must list the
	// tool's flags as JSON.
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			printVersion()
			return
		case a == "-flags" || a == "--flags":
			fmt.Println("[]")
			return
		}
	}

	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(lint.RunUnit(os.Stderr, args[0], lint.Analyzers()))
	}

	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	for _, p := range patterns {
		if strings.HasPrefix(p, "-") {
			fmt.Fprintf(os.Stderr, "rvlint: unknown flag %s\n", p)
			os.Exit(2)
		}
	}
	n, err := lint.RunStandalone(os.Stderr, ".", patterns, lint.Analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "rvlint: %v\n", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "rvlint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// printVersion emits the build-caching fingerprint the go command
// requires from a vettool: a "name version devel ... buildID=<hash>"
// line whose hash changes whenever the binary does, so editing an
// analyzer invalidates cached vet results.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("rvlint version devel buildID=%x\n", h.Sum(nil))
}
