// Command rvnegtestd runs negative-testing campaigns as a service: an
// HTTP daemon with a persistent job queue. Jobs are the same JobSpec the
// CLIs execute — submitting a spec to the daemon produces byte-identical
// artifacts to running rvfuzz/rvcompliance directly, and queued or
// running jobs survive daemon restarts (including kill -9) by resuming
// from their engine checkpoints.
//
// Usage:
//
//	rvnegtestd -data /var/lib/rvnegtestd [-addr 127.0.0.1:9640] [-slots 2]
//	           [-events events.ndjson] [-addr-file path]
//
// See DESIGN.md §18 and the README's "Running as a service" section for
// the API walkthrough.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rvnegtest/internal/campaign"
	"rvnegtest/internal/obs"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rvnegtestd: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:9640", "listen address for the HTTP API (use port 0 with -addr-file for an ephemeral port)")
		data     = flag.String("data", "", "job store directory: specs, checkpoints, quarantine and artifacts persist here (required)")
		slots    = flag.Int("slots", 1, "jobs running concurrently (each job may use multiple engine workers)")
		events   = flag.String("events", "", "append daemon and job lifecycle events as NDJSON to this file (render with rvreport -events)")
		addrFile = flag.String("addr-file", "", "write the bound listen address to this file (for scripts using port 0)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fatalf("unexpected arguments: %v", flag.Args())
	}
	if *data == "" {
		fatalf("-data is required: the job store directory is what makes jobs survive restarts")
	}

	store, err := campaign.OpenStore(*data)
	if err != nil {
		fatalf("opening job store: %v", err)
	}

	reg := obs.NewRegistry()
	var eventLog *obs.EventLog
	if *events != "" {
		// Append, not truncate: one event stream accumulates across
		// daemon restarts, so a resumed job's history stays in one file.
		eventLog, err = obs.AppendEventLog(*events)
		if err != nil {
			fatalf("events file: %v", err)
		}
	}

	sched, err := campaign.Open(store, campaign.SchedulerConfig{
		Slots:  *slots,
		Obs:    reg,
		Events: eventLog,
	})
	if err != nil {
		fatalf("recovering job store: %v", err)
	}

	mux := http.NewServeMux()
	mux.Handle("/api/v1/", campaign.NewAPI(sched))
	telemetry := obs.Handler(reg)
	mux.Handle("/metrics", telemetry)
	mux.Handle("/debug/", telemetry)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("listen: %v", err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fatalf("writing -addr-file: %v", err)
		}
	}

	sched.Start()
	srv := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "rvnegtestd: listening on http://%s (store %s, %d slot(s))\n", bound, *data, *slots)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "rvnegtestd: %v: draining (running jobs checkpoint and resume on next start)\n", sig)
	case err := <-serveErr:
		fatalf("serving: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
	sched.Close()
	if eventLog != nil {
		if err := eventLog.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "rvnegtestd: closing events file: %v\n", err)
		}
	}
}
