// Command rvcompliance runs Phase B: compliance testing of the simulator
// models against the reference simulator, reproducing Table I of the
// paper.
//
// Examples:
//
//	rvcompliance -generate 1000000            # fuzz a suite, then test
//	rvcompliance -suite suite.txt -bugs       # use a saved suite
//	rvcompliance -suite trap -generate 50000  # trap-rich privileged suite
//	rvcompliance -ref reference -sims Spike   # custom comparison
//
// External simulators join the comparison as subprocess adapter columns
// (see cmd/rvsutadapter for the reference adapter):
//
//	rvcompliance -generate 10000 -sut 'ext=rvsutadapter -variant VP'
//	rvcompliance -generate 10000 -sims '' -sut 'a=adapter-a' -sut 'b=adapter-b'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rvnegtest"
	"rvnegtest/internal/campaign"
	"rvnegtest/internal/compliance"
	"rvnegtest/internal/fuzz"
	"rvnegtest/internal/isa"
	"rvnegtest/internal/sim"
	"rvnegtest/internal/torture"
)

func main() {
	var (
		suitePath = flag.String("suite", "", "saved suite file (from rvfuzz -out), or a family name (user|trap) to generate with")
		generate  = flag.Uint64("generate", 0, "generate a suite with this many fuzzer executions first")
		seconds   = flag.Float64("seconds", 0, "wall-time budget for generation")
		seed      = flag.Int64("seed", 1, "fuzzer seed for -generate")
		cov       = flag.String("cov", "v3", "coverage configuration for -generate")
		refName   = flag.String("ref", "riscvOVPsim", "reference simulator")
		simsFlag  = flag.String("sims", "Spike,VP,sail-riscv,GRIFT", "simulators under test (comma separated)")
		isasFlag  = flag.String("isa", "RV32I,RV32IMC,RV32GC", "ISA configurations (comma separated)")
		bugs      = flag.Bool("bugs", false, "print the mismatch-category breakdown per simulator")
		examples  = flag.Bool("examples", false, "print example mismatching test cases per cell")
		positive  = flag.Bool("positive", false, "use the official-style directed positive suite (per configuration)")
		tortureN  = flag.Int("torture", 0, "use a torture-style positive baseline suite with N cases per configuration")
		rounds    = flag.Int("continuous", 0, "continuous mode: repeat generate+compare for N rounds with fresh seeds")
		exportDir = flag.String("export-sigs", "", "write the reference signatures for the suite into this directory and exit")
		verifyDir = flag.String("verify-sigs", "", "compare simulators against reference signature files in this directory")
		asJSON    = flag.Bool("json", false, "emit the report as JSON (for CI pipelines)")
		stats     = flag.Bool("stats", false, "print engine throughput and per-worker execution counts to stderr")
		progress  = flag.Bool("progress", false, "log per-shard completion to stderr while the engine runs")
		breaker   = flag.Int("breaker", 0, "consecutive harness faults before an instance is marked unhealthy (0 = default, <0 disables)")

		sutTimeout = flag.Float64("sut-timeout", 0, "external adapters: per-run wall-clock watchdog in seconds (0 = default 10s)")
		sutRetries = flag.Int("sut-retries", 0, "external adapters: kill-and-restart retries per case (0 = default 2, <0 disables)")
		sutProbe   = flag.Int("sut-halfopen", 0, "external adapters: skipped runs before a tripped breaker admits a recovery probe (0 = default, <0 stays open)")
	)
	var externals sutFlag
	flag.Var(&externals, "sut", "external SUT adapter column as NAME=COMMAND [ARGS...] (repeatable)")
	var shared campaign.Flags
	shared.Register(flag.CommandLine, -1, "compliance engine workers: 1 = serial, N = fixed pool, -1 = one per CPU (report is identical for any value)")
	flag.Parse()

	if *positive || *tortureN > 0 {
		runPositiveBaseline(*positive, *tortureN, *seed, *isasFlag, *refName, *simsFlag, shared.Workers)
		return
	}
	if *rounds > 0 {
		runContinuous(*rounds, *generate, *seed, *cov)
		return
	}

	// -suite takes either a saved suite file or a family name: "trap"
	// (or "user") selects the template family for generation instead.
	_, isFamily := rvnegtest.ParseFamily(*suitePath)
	switch {
	case *suitePath != "" && !isFamily:
		// A saved suite file; Execute loads it.
	case *generate > 0 || *seconds > 0:
		// Generate first, budgeted by -generate / -seconds.
	case isFamily && *suitePath != "":
		fatalf("-suite %s selects a generated family; add a budget with -generate N or -seconds S", *suitePath)
	default:
		fatalf("need -suite FILE|user|trap or -generate N")
	}

	// Pre-validate names with the CLI's traditional messages; Execute
	// re-validates the full spec.
	sims := []string{}
	for _, name := range strings.Split(*simsFlag, ",") {
		// -sims '' selects no built-in columns (external-only campaigns).
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := sim.ByName(name); !ok {
			fatalf("unknown simulator %q", name)
		}
		sims = append(sims, name)
	}
	if _, ok := sim.ByName(*refName); !ok {
		fatalf("unknown reference simulator %q", *refName)
	}
	if len(sims) == 0 && len(externals) == 0 {
		fatalf("no simulators under test: give -sims and/or -sut")
	}
	var isas []string
	for _, name := range strings.Split(*isasFlag, ",") {
		name = strings.TrimSpace(name)
		if _, err := isa.ParseConfig(name); err != nil {
			fatalf("%v", err)
		}
		isas = append(isas, name)
	}

	if *exportDir != "" || *verifyDir != "" {
		runSignatureMode(*exportDir, *verifyDir, *suitePath, *generate, *seconds, *seed, *cov, *refName, sims, isas)
		return
	}

	spec := campaign.JobSpec{
		Kind:             campaign.KindCompliance,
		Suite:            *suitePath,
		Cov:              *cov,
		Seed:             *seed,
		Execs:            *generate,
		Ref:              *refName,
		Sims:             sims,
		ISAs:             isas,
		BreakerThreshold: *breaker,
		External:         externals,
		SUTTimeoutSec:    *sutTimeout,
		SUTRetries:       *sutRetries,
		SUTHalfOpen:      *sutProbe,
	}
	shared.Apply(&spec)

	ckptDir, err := shared.CheckpointDir(compliance.HasCheckpoint)
	if err != nil {
		fatalf("%v", err)
	}
	telemetry, err := shared.OpenTelemetry("rvcompliance")
	if err != nil {
		fatalf("%v", err)
	}
	defer telemetry.Close()
	env := shared.Env(ckptDir, telemetry)
	env.WallBudget = time.Duration(*seconds * float64(time.Second))
	if *progress {
		env.Progress = func(ev compliance.ProgressEvent) {
			name := ev.Sim
			if name == "" {
				name = "reference"
			}
			fmt.Fprintf(os.Stderr, "  [w%d] %v %-12s cases %d..%d (%d executed)\n",
				ev.Worker, ev.Config, name, ev.Lo, ev.Hi, ev.Execs)
		}
	}

	ctx := context.Background()
	if ckptDir != "" {
		var stop context.CancelFunc
		ctx, stop = signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
		defer stop()
	}
	res, err := campaign.Execute(ctx, spec, env)
	if errors.Is(err, campaign.ErrInterrupted) {
		fmt.Fprintf(os.Stderr, "rvcompliance: interrupted, state checkpointed; continue with: rvcompliance -resume %s (plus the original flags)\n", ckptDir)
		telemetry.Close() // os.Exit skips the deferred flush
		os.Exit(130)
	}
	if err != nil {
		fatalf("%v", err)
	}
	if res.GenStats != nil {
		printGenerated(res.Suite, *res.GenStats)
	}
	rep := res.Report
	if *stats {
		fmt.Fprintf(os.Stderr, "engine: %s\n", res.RunStats)
	}
	if *asJSON {
		raw, err := rep.JSON()
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("%s\n", raw)
		exitDegraded(rep, telemetry.Close)
		return
	}
	fmt.Print(rep.Render())
	if *bugs {
		fmt.Println("\nFindings by mismatch category:")
		fmt.Print(rep.BugFindings())
	}
	if *examples {
		fmt.Println("\nExample mismatching cases (bytestreams, hex):")
		for i, cfg := range rep.Configs {
			for j, name := range rep.Sims {
				c := rep.Cells[i][j]
				for _, idx := range c.Examples {
					fmt.Printf("  %v %s case %d: %x\n", cfg, name, idx, res.Suite.Cases[idx])
				}
			}
		}
	}
	exitDegraded(rep, telemetry.Close)
}

// printGenerated reports a just-generated suite the way the CLI always
// has (trap suites count the directed probes that ride along).
func printGenerated(suite *rvnegtest.Suite, st fuzz.Stats) {
	if suite.Family == rvnegtest.FamilyTrap {
		fmt.Printf("generated %d trap-family test cases from %d executions (%.0f/s)\n\n",
			len(suite.Cases), st.Execs, st.ExecsPerSec)
	} else {
		fmt.Printf("generated %d test cases from %d executions (%.0f/s)\n\n",
			st.TestCases, st.Execs, st.ExecsPerSec)
	}
}

// resolveSuite loads or generates the suite for the signature modes,
// mirroring what a compliance job's generation step would do.
func resolveSuite(suitePath string, generate uint64, seconds float64, seed int64, cov string) *rvnegtest.Suite {
	family, isFamily := rvnegtest.ParseFamily(suitePath)
	if suitePath != "" && !isFamily {
		suite, err := rvnegtest.LoadSuite(suitePath)
		if err != nil {
			fatalf("loading suite: %v", err)
		}
		return suite
	}
	cfg := rvnegtest.DefaultFuzzConfig()
	var ok bool
	if cfg, ok = rvnegtest.CoverageConfig(cfg, cov); !ok {
		fatalf("unknown coverage configuration %q", cov)
	}
	cfg.Seed = seed
	cfg.Family = family
	suite, st, err := rvnegtest.GenerateSuite(cfg, generate, time.Duration(seconds*float64(time.Second)))
	if err != nil {
		fatalf("%v", err)
	}
	printGenerated(suite, st)
	return suite
}

// runSignatureMode handles -export-sigs and -verify-sigs: signature
// interchange against a directory rather than a live comparison run.
func runSignatureMode(exportDir, verifyDir, suitePath string, generate uint64, seconds float64, seed int64, cov, refName string, sims, isas []string) {
	suite := resolveSuite(suitePath, generate, seconds, seed, cov)
	ref, ok := sim.ByName(refName)
	if !ok {
		fatalf("unknown reference simulator %q", refName)
	}
	var configs []isa.Config
	for _, name := range isas {
		cfg, err := isa.ParseConfig(name)
		if err != nil {
			fatalf("%v", err)
		}
		configs = append(configs, cfg)
	}
	if exportDir != "" {
		for _, cfg := range configs {
			if err := compliance.ExportReferenceSignatures(suite, ref, cfg, exportDir, nil); err != nil {
				fatalf("exporting signatures: %v", err)
			}
		}
		fmt.Printf("reference signatures for %d cases written under %s\n", len(suite.Cases), exportDir)
		return
	}
	for _, cfg := range configs {
		for _, name := range sims {
			v, ok := sim.ByName(name)
			if !ok {
				fatalf("unknown simulator %q", name)
			}
			cell, err := compliance.VerifyAgainstSignatures(suite, v, cfg, verifyDir)
			if err != nil {
				fatalf("verifying: %v", err)
			}
			fmt.Printf("%-8v %-12s %s\n", cfg, v.Name, cell)
		}
	}
}

// sutFlag accumulates repeated -sut NAME=COMMAND [ARGS...] values into
// external adapter columns. The command is split on whitespace (adapter
// paths with spaces are not supported; use a wrapper script).
type sutFlag []campaign.SUTSpec

func (f *sutFlag) String() string {
	var parts []string
	for _, s := range *f {
		parts = append(parts, s.Name+"="+strings.Join(s.Argv, " "))
	}
	return strings.Join(parts, ", ")
}

func (f *sutFlag) Set(v string) error {
	s, err := campaign.ParseSUT(v)
	if err != nil {
		return err
	}
	*f = append(*f, s)
	return nil
}

// exitDegraded exits with status 2 when the report contains cells degraded
// by harness faults: the comparison completed, but some results are
// Crashed/Timeout/Skipped(sut-unhealthy or adapter-level) rather than
// real verdicts. closeTelemetry runs first — os.Exit skips the deferred
// flush, and a truncated NDJSON stream would defeat the post-mortem the
// degraded exit asks for.
func exitDegraded(rep *compliance.Report, closeTelemetry func()) {
	if rep.Degraded() {
		fmt.Fprintln(os.Stderr, "rvcompliance: run degraded by harness faults (crashed, wedged, unhealthy simulators, or failed external adapters; see report)")
		closeTelemetry()
		os.Exit(2)
	}
}

// runPositiveBaseline runs positive-testing suites (the official-style
// directed suite or the torture-style random baseline) per configuration —
// these are per-extension suites, so each configuration gets its own.
func runPositiveBaseline(official bool, tortureN int, seed int64, isas, refName, sims string, workers int) {
	for _, name := range strings.Split(isas, ",") {
		cfg, err := isa.ParseConfig(strings.TrimSpace(name))
		if err != nil {
			fatalf("%v", err)
		}
		var suite *rvnegtest.Suite
		if official {
			suite, err = rvnegtest.OfficialStyleSuite(cfg)
		} else {
			suite, err = torture.Suite(seed, cfg, tortureN, 16)
		}
		if err != nil {
			fatalf("%v", err)
		}
		runner := &compliance.Runner{Configs: []isa.Config{cfg}, MaxExamples: 10, Workers: workers}
		ref, ok := sim.ByName(refName)
		if !ok {
			fatalf("unknown reference %q", refName)
		}
		runner.Ref = ref
		for _, s := range strings.Split(sims, ",") {
			v, ok := sim.ByName(strings.TrimSpace(s))
			if !ok {
				fatalf("unknown simulator %q", s)
			}
			runner.SUTs = append(runner.SUTs, v)
		}
		rep, err := runner.Run(suite)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("suite: %s\n%s\n", suite.Origin, rep.Render())
	}
}

// runContinuous repeats the generate+compare pipeline with fresh seeds.
func runContinuous(rounds int, execs uint64, seed int64, cov string) {
	if execs == 0 {
		execs = 100000
	}
	cfg := rvnegtest.DefaultFuzzConfig()
	var ok bool
	if cfg, ok = rvnegtest.CoverageConfig(cfg, cov); !ok {
		fatalf("unknown coverage configuration %q", cov)
	}
	cfg.Seed = seed
	res, err := rvnegtest.Continuous(cfg, rounds, execs, nil)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("continuous negative testing: %d rounds x %d executions\n", rounds, execs)
	for i, r := range res.Rounds {
		fmt.Printf("round %d (seed %d): %d test cases, %d new findings\n",
			i+1, r.Seed, r.TestCases, r.NewFindings)
	}
	fmt.Printf("distinct findings overall: %d\n\nfinal round:\n%s", res.Distinct, res.Last.Render())
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rvcompliance: "+format+"\n", args...)
	os.Exit(1)
}
