// Command rvcompliance runs Phase B: compliance testing of the simulator
// models against the reference simulator, reproducing Table I of the
// paper.
//
// Examples:
//
//	rvcompliance -generate 1000000            # fuzz a suite, then test
//	rvcompliance -suite suite.txt -bugs       # use a saved suite
//	rvcompliance -suite trap -generate 50000  # trap-rich privileged suite
//	rvcompliance -ref reference -sims Spike   # custom comparison
//
// External simulators join the comparison as subprocess adapter columns
// (see cmd/rvsutadapter for the reference adapter):
//
//	rvcompliance -generate 10000 -sut 'ext=rvsutadapter -variant VP'
//	rvcompliance -generate 10000 -sims '' -sut 'a=adapter-a' -sut 'b=adapter-b'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rvnegtest"
	"rvnegtest/internal/compliance"
	"rvnegtest/internal/isa"
	"rvnegtest/internal/obs"
	"rvnegtest/internal/sim"
	"rvnegtest/internal/sut"
	"rvnegtest/internal/torture"
)

func main() {
	var (
		suitePath = flag.String("suite", "", "saved suite file (from rvfuzz -out), or a family name (user|trap) to generate with")
		generate  = flag.Uint64("generate", 0, "generate a suite with this many fuzzer executions first")
		seconds   = flag.Float64("seconds", 0, "wall-time budget for generation")
		seed      = flag.Int64("seed", 1, "fuzzer seed for -generate")
		cov       = flag.String("cov", "v3", "coverage configuration for -generate")
		refName   = flag.String("ref", "riscvOVPsim", "reference simulator")
		simsFlag  = flag.String("sims", "Spike,VP,sail-riscv,GRIFT", "simulators under test (comma separated)")
		isasFlag  = flag.String("isa", "RV32I,RV32IMC,RV32GC", "ISA configurations (comma separated)")
		bugs      = flag.Bool("bugs", false, "print the mismatch-category breakdown per simulator")
		examples  = flag.Bool("examples", false, "print example mismatching test cases per cell")
		positive  = flag.Bool("positive", false, "use the official-style directed positive suite (per configuration)")
		tortureN  = flag.Int("torture", 0, "use a torture-style positive baseline suite with N cases per configuration")
		rounds    = flag.Int("continuous", 0, "continuous mode: repeat generate+compare for N rounds with fresh seeds")
		exportDir = flag.String("export-sigs", "", "write the reference signatures for the suite into this directory and exit")
		verifyDir = flag.String("verify-sigs", "", "compare simulators against reference signature files in this directory")
		asJSON    = flag.Bool("json", false, "emit the report as JSON (for CI pipelines)")
		workers   = flag.Int("workers", -1, "compliance engine workers: 1 = serial, N = fixed pool, -1 = one per CPU (report is identical for any value)")
		stats     = flag.Bool("stats", false, "print engine throughput and per-worker execution counts to stderr")
		progress  = flag.Bool("progress", false, "log per-shard completion to stderr while the engine runs")

		checkpoint = flag.String("checkpoint", "", "checkpoint campaign state under this directory (enables resume)")
		resume     = flag.String("resume", "", "resume a checkpointed campaign from this directory")
		caseSecs   = flag.Float64("case-timeout", 0, "per-case wall-clock watchdog in seconds (0 disables)")
		breaker    = flag.Int("breaker", 0, "consecutive harness faults before an instance is marked unhealthy (0 = default, <0 disables)")
		quarantine = flag.String("quarantine", "", "save inputs that trigger harness faults into this directory")
		noPre      = flag.Bool("no-predecode", false, "ablation: disable the predecoded execution core (reports are identical either way)")
		batch      = flag.Int("batch", 0, "run in-process simulator columns in batched lockstep, N lanes per worker (reports are identical either way; 0 disables)")
		telAddr    = flag.String("telemetry-addr", "", "serve live telemetry on this address: Prometheus-text /metrics, /debug/vars, net/http/pprof")
		eventsPath = flag.String("events", "", "write run lifecycle events as NDJSON to this file (render with rvreport -events)")

		sutTimeout = flag.Float64("sut-timeout", 0, "external adapters: per-run wall-clock watchdog in seconds (0 = default 10s)")
		sutRetries = flag.Int("sut-retries", 0, "external adapters: kill-and-restart retries per case (0 = default 2, <0 disables)")
		sutProbe   = flag.Int("sut-halfopen", 0, "external adapters: skipped runs before a tripped breaker admits a recovery probe (0 = default, <0 stays open)")
	)
	var externals sutFlag
	flag.Var(&externals, "sut", "external SUT adapter column as NAME=COMMAND [ARGS...] (repeatable)")
	flag.Parse()

	if *positive || *tortureN > 0 {
		runPositiveBaseline(*positive, *tortureN, *seed, *isasFlag, *refName, *simsFlag, *workers)
		return
	}
	if *rounds > 0 {
		runContinuous(*rounds, *generate, *seed, *cov)
		return
	}

	// -suite takes either a saved suite file or a family name: "trap"
	// (or "user") selects the template family for generation instead.
	family, isFamily := rvnegtest.ParseFamily(*suitePath)

	var suite *rvnegtest.Suite
	switch {
	case *suitePath != "" && !isFamily:
		var err error
		suite, err = rvnegtest.LoadSuite(*suitePath)
		if err != nil {
			fatalf("loading suite: %v", err)
		}
	case *generate > 0 || *seconds > 0:
		cfg := rvnegtest.DefaultFuzzConfig()
		var ok bool
		if cfg, ok = rvnegtest.CoverageConfig(cfg, *cov); !ok {
			fatalf("unknown coverage configuration %q", *cov)
		}
		cfg.Seed = *seed
		cfg.Family = family
		var st rvnegtest.FuzzStats
		var err error
		suite, st, err = rvnegtest.GenerateSuite(cfg, *generate, time.Duration(*seconds*float64(time.Second)))
		if err != nil {
			fatalf("%v", err)
		}
		if suite.Family == rvnegtest.FamilyTrap {
			fmt.Printf("generated %d trap-family test cases from %d executions (%.0f/s)\n\n",
				len(suite.Cases), st.Execs, st.ExecsPerSec)
		} else {
			fmt.Printf("generated %d test cases from %d executions (%.0f/s)\n\n",
				st.TestCases, st.Execs, st.ExecsPerSec)
		}
	case isFamily && *suitePath != "":
		fatalf("-suite %s selects a generated family; add a budget with -generate N or -seconds S", *suitePath)
	default:
		fatalf("need -suite FILE|user|trap or -generate N")
	}

	for i := range externals {
		externals[i].RunTimeout = time.Duration(*sutTimeout * float64(time.Second))
		externals[i].Retries = *sutRetries
	}
	runner := &compliance.Runner{
		MaxExamples:      10,
		Workers:          *workers,
		CaseTimeout:      time.Duration(*caseSecs * float64(time.Second)),
		BreakerThreshold: *breaker,
		QuarantineDir:    *quarantine,
		DisablePredecode: *noPre,
		Batch:            *batch,
		External:         externals,
		HalfOpenAfter:    *sutProbe,
	}
	closeTelemetry := setupTelemetry(*telAddr, *eventsPath, runner)
	defer closeTelemetry()
	if *progress {
		runner.Progress = func(ev compliance.ProgressEvent) {
			name := ev.Sim
			if name == "" {
				name = "reference"
			}
			fmt.Fprintf(os.Stderr, "  [w%d] %v %-12s cases %d..%d (%d executed)\n",
				ev.Worker, ev.Config, name, ev.Lo, ev.Hi, ev.Execs)
		}
	}
	ref, ok := sim.ByName(*refName)
	if !ok {
		fatalf("unknown reference simulator %q", *refName)
	}
	runner.Ref = ref
	// -sims '' selects no built-in columns (external-only campaigns).
	for _, name := range strings.Split(*simsFlag, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		v, ok := sim.ByName(name)
		if !ok {
			fatalf("unknown simulator %q", name)
		}
		runner.SUTs = append(runner.SUTs, v)
	}
	if len(runner.SUTs) == 0 && len(runner.External) == 0 {
		fatalf("no simulators under test: give -sims and/or -sut")
	}
	for _, name := range strings.Split(*isasFlag, ",") {
		cfg, err := isa.ParseConfig(strings.TrimSpace(name))
		if err != nil {
			fatalf("%v", err)
		}
		runner.Configs = append(runner.Configs, cfg)
	}

	if *exportDir != "" {
		for _, cfg := range runner.Configs {
			if err := compliance.ExportReferenceSignatures(suite, runner.Ref, cfg, *exportDir, nil); err != nil {
				fatalf("exporting signatures: %v", err)
			}
		}
		fmt.Printf("reference signatures for %d cases written under %s\n", len(suite.Cases), *exportDir)
		return
	}
	if *verifyDir != "" {
		for _, cfg := range runner.Configs {
			for _, v := range runner.SUTs {
				cell, err := compliance.VerifyAgainstSignatures(suite, v, cfg, *verifyDir)
				if err != nil {
					fatalf("verifying: %v", err)
				}
				fmt.Printf("%-8v %-12s %s\n", cfg, v.Name, cell)
			}
		}
		return
	}

	ckptDir := *checkpoint
	if *resume != "" {
		if ckptDir != "" && ckptDir != *resume {
			fatalf("-checkpoint and -resume name different directories")
		}
		ckptDir = *resume
		if !compliance.HasCheckpoint(ckptDir) {
			fatalf("no checkpoint found under %s", ckptDir)
		}
	}
	var rep *compliance.Report
	var err error
	if ckptDir != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		rep, err = runner.RunResumable(ctx, suite, ckptDir)
		if errors.Is(err, compliance.ErrInterrupted) {
			fmt.Fprintf(os.Stderr, "rvcompliance: interrupted, state checkpointed; continue with: rvcompliance -resume %s (plus the original flags)\n", ckptDir)
			closeTelemetry() // os.Exit skips the deferred flush
			os.Exit(130)
		}
	} else {
		rep, err = runner.Run(suite)
	}
	if err != nil {
		fatalf("%v", err)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "engine: %s\n", runner.Stats)
	}
	if *asJSON {
		raw, err := rep.JSON()
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("%s\n", raw)
		exitDegraded(rep, closeTelemetry)
		return
	}
	fmt.Print(rep.Render())
	if *bugs {
		fmt.Println("\nFindings by mismatch category:")
		fmt.Print(rep.BugFindings())
	}
	if *examples {
		fmt.Println("\nExample mismatching cases (bytestreams, hex):")
		for i, cfg := range rep.Configs {
			for j, name := range rep.Sims {
				c := rep.Cells[i][j]
				for _, idx := range c.Examples {
					fmt.Printf("  %v %s case %d: %x\n", cfg, name, idx, suite.Cases[idx])
				}
			}
		}
	}
	exitDegraded(rep, closeTelemetry)
}

// setupTelemetry wires the optional live-metrics server and NDJSON event
// stream into the runner, returning a close function that flushes the
// event file and shuts the server down.
func setupTelemetry(addr, eventsPath string, runner *compliance.Runner) func() {
	var closers []func()
	if addr != "" {
		runner.Obs = obs.NewRegistry()
		srv, err := obs.Serve(addr, runner.Obs)
		if err != nil {
			fatalf("telemetry server: %v", err)
		}
		fmt.Fprintf(os.Stderr, "rvcompliance: telemetry at http://%s/metrics (also /debug/vars, /debug/pprof/)\n", srv.Addr)
		closers = append(closers, func() { srv.Close() })
	}
	if eventsPath != "" {
		events, err := obs.CreateEventLog(eventsPath)
		if err != nil {
			fatalf("events file: %v", err)
		}
		runner.Events = events
		closers = append(closers, func() {
			if err := events.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "rvcompliance: closing events file: %v\n", err)
			}
		})
	}
	return func() {
		for _, c := range closers {
			c()
		}
	}
}

// sutFlag accumulates repeated -sut NAME=COMMAND [ARGS...] values into
// external adapter specs. The command is split on whitespace (adapter
// paths with spaces are not supported; use a wrapper script).
type sutFlag []sut.Spec

func (f *sutFlag) String() string {
	var parts []string
	for _, s := range *f {
		parts = append(parts, s.Name+"="+strings.Join(s.Argv, " "))
	}
	return strings.Join(parts, ", ")
}

func (f *sutFlag) Set(v string) error {
	name, cmd, ok := strings.Cut(v, "=")
	name = strings.TrimSpace(name)
	argv := strings.Fields(cmd)
	if !ok || name == "" || len(argv) == 0 {
		return fmt.Errorf("want NAME=COMMAND [ARGS...], got %q", v)
	}
	*f = append(*f, sut.Spec{Name: name, Argv: argv})
	return nil
}

// exitDegraded exits with status 2 when the report contains cells degraded
// by harness faults: the comparison completed, but some results are
// Crashed/Timeout/Skipped(sut-unhealthy or adapter-level) rather than
// real verdicts. closeTelemetry runs first — os.Exit skips the deferred
// flush, and a truncated NDJSON stream would defeat the post-mortem the
// degraded exit asks for.
func exitDegraded(rep *compliance.Report, closeTelemetry func()) {
	if rep.Degraded() {
		fmt.Fprintln(os.Stderr, "rvcompliance: run degraded by harness faults (crashed, wedged, unhealthy simulators, or failed external adapters; see report)")
		closeTelemetry()
		os.Exit(2)
	}
}

// runPositiveBaseline runs positive-testing suites (the official-style
// directed suite or the torture-style random baseline) per configuration —
// these are per-extension suites, so each configuration gets its own.
func runPositiveBaseline(official bool, tortureN int, seed int64, isas, refName, sims string, workers int) {
	for _, name := range strings.Split(isas, ",") {
		cfg, err := isa.ParseConfig(strings.TrimSpace(name))
		if err != nil {
			fatalf("%v", err)
		}
		var suite *rvnegtest.Suite
		if official {
			suite, err = rvnegtest.OfficialStyleSuite(cfg)
		} else {
			suite, err = torture.Suite(seed, cfg, tortureN, 16)
		}
		if err != nil {
			fatalf("%v", err)
		}
		runner := &compliance.Runner{Configs: []isa.Config{cfg}, MaxExamples: 10, Workers: workers}
		ref, ok := sim.ByName(refName)
		if !ok {
			fatalf("unknown reference %q", refName)
		}
		runner.Ref = ref
		for _, s := range strings.Split(sims, ",") {
			v, ok := sim.ByName(strings.TrimSpace(s))
			if !ok {
				fatalf("unknown simulator %q", s)
			}
			runner.SUTs = append(runner.SUTs, v)
		}
		rep, err := runner.Run(suite)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("suite: %s\n%s\n", suite.Origin, rep.Render())
	}
}

// runContinuous repeats the generate+compare pipeline with fresh seeds.
func runContinuous(rounds int, execs uint64, seed int64, cov string) {
	if execs == 0 {
		execs = 100000
	}
	cfg := rvnegtest.DefaultFuzzConfig()
	var ok bool
	if cfg, ok = rvnegtest.CoverageConfig(cfg, cov); !ok {
		fatalf("unknown coverage configuration %q", cov)
	}
	cfg.Seed = seed
	res, err := rvnegtest.Continuous(cfg, rounds, execs, nil)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("continuous negative testing: %d rounds x %d executions\n", rounds, execs)
	for i, r := range res.Rounds {
		fmt.Printf("round %d (seed %d): %d test cases, %d new findings\n",
			i+1, r.Seed, r.TestCases, r.NewFindings)
	}
	fmt.Printf("distinct findings overall: %d\n\nfinal round:\n%s", res.Distinct, res.Last.Render())
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rvcompliance: "+format+"\n", args...)
	os.Exit(1)
}
