// Command rvdisas disassembles RV32GC machine code: raw hex words from the
// command line, or the text segment of an ELF file.
//
// Examples:
//
//	rvdisas 00310093 005201b3
//	rvdisas -elf test.elf
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"

	"rvnegtest/internal/elf"
	"rvnegtest/internal/isa"
)

func main() {
	elfPath := flag.String("elf", "", "disassemble this ELF file's executable segments")
	flag.Parse()

	if *elfPath != "" {
		raw, err := os.ReadFile(*elfPath)
		if err != nil {
			fatalf("%v", err)
		}
		img, err := elf.Parse(raw)
		if err != nil {
			fatalf("%v", err)
		}
		for _, seg := range img.Segments {
			if seg.Flags&0x1 == 0 { // not executable
				continue
			}
			disasm(seg.Addr, seg.Data)
		}
		return
	}

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: rvdisas [-elf FILE] [hexword ...]")
		os.Exit(2)
	}
	var buf []byte
	for _, arg := range flag.Args() {
		b, err := hex.DecodeString(arg)
		if err != nil {
			fatalf("bad hex %q: %v", arg, err)
		}
		// Hex words on the command line are big-endian human notation;
		// flip to memory order.
		for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
			b[i], b[j] = b[j], b[i]
		}
		buf = append(buf, b...)
	}
	disasm(0, buf)
}

func disasm(addr uint32, code []byte) {
	for pc := 0; pc+2 <= len(code); {
		lo := uint16(code[pc]) | uint16(code[pc+1])<<8
		var inst isa.Inst
		if lo&3 == 3 {
			if pc+4 > len(code) {
				break
			}
			w := uint32(lo) | uint32(code[pc+2])<<16 | uint32(code[pc+3])<<24
			inst = isa.Ref.Decode32(w)
		} else {
			inst = isa.Ref.DecodeC(lo)
		}
		if inst.Size == 2 {
			fmt.Printf("%08x:     %04x  %s\n", addr+uint32(pc), inst.Raw, isa.Disasm(inst))
		} else {
			fmt.Printf("%08x: %08x  %s\n", addr+uint32(pc), inst.Raw, isa.Disasm(inst))
		}
		pc += int(inst.Size)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rvdisas: "+format+"\n", args...)
	os.Exit(1)
}
