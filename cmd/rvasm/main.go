// Command rvasm assembles an RV32GC assembler source into a RISC-V ELF32
// executable (the per-platform compilation step of the compliance flow).
//
// Example:
//
//	rvasm -o test.elf -D RVTEST_FP test.S
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"rvnegtest/internal/asm"
	"rvnegtest/internal/elf"
	"rvnegtest/internal/template"
)

func main() {
	var (
		out      = flag.String("o", "a.out", "output ELF file")
		textBase = flag.Uint("text", uint(template.DefaultLayout.TextBase), "text section base address")
		dataBase = flag.Uint("data", uint(template.DefaultLayout.DataBase), "data section base address")
		defines  defineList
		listSyms = flag.Bool("symbols", false, "print the symbol table")
	)
	flag.Var(&defines, "D", "define a symbol for .ifdef (repeatable; NAME or NAME=VALUE)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rvasm [flags] input.S")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	prog, err := asm.Assemble(string(src), asm.Options{
		TextBase: uint32(*textBase),
		DataBase: uint32(*dataBase),
		Defines:  defines.m,
	})
	if err != nil {
		fatalf("%v", err)
	}
	img := elf.FromProgram(prog)
	if err := os.WriteFile(*out, img.Write(), 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("%s: text %d bytes at %#x, data %d bytes at %#x, entry %#x\n",
		*out, len(prog.Text.Data), prog.Text.Addr, len(prog.Data.Data), prog.Data.Addr, prog.Entry)
	if *listSyms {
		// Stable listing: by address, name breaking ties (map order is
		// random per process).
		names := make([]string, 0, len(prog.Symbols))
		for name := range prog.Symbols {
			names = append(names, name)
		}
		sort.Slice(names, func(i, j int) bool {
			ai, aj := prog.Symbols[names[i]], prog.Symbols[names[j]]
			if ai != aj {
				return ai < aj
			}
			return names[i] < names[j]
		})
		for _, name := range names {
			fmt.Printf("%08x %s\n", prog.Symbols[name], name)
		}
	}
}

type defineList struct{ m map[string]int64 }

func (d *defineList) String() string { return fmt.Sprint(d.m) }

func (d *defineList) Set(s string) error {
	if d.m == nil {
		d.m = map[string]int64{}
	}
	name, val, has := strings.Cut(s, "=")
	v := int64(1)
	if has {
		if _, err := fmt.Sscanf(val, "%d", &v); err != nil {
			return fmt.Errorf("bad define value %q", val)
		}
	}
	d.m[name] = v
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rvasm: "+format+"\n", args...)
	os.Exit(1)
}
