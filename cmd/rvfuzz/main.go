// Command rvfuzz runs Phase A of the pipeline: fuzzer-based generation of
// a RISC-V compliance test suite (negative-testing oriented), with the
// paper's coverage configurations v0..v3.
//
// Examples:
//
//	rvfuzz -cov v3 -execs 1000000 -out suite.txt
//	rvfuzz -fig4 -execs 200000            # growth-curve experiment
//	rvfuzz -suite trap -execs 100000      # trap-rich privileged suite
//	rvfuzz -cov v1 -seconds 30 -asm-dir suite-asm
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"rvnegtest"
	"rvnegtest/internal/campaign"
	"rvnegtest/internal/compliance"
	"rvnegtest/internal/fuzz"
	"rvnegtest/internal/template"
)

func main() {
	var (
		cov       = flag.String("cov", "v3", "coverage configuration: v0|v1|v2|v3")
		execs     = flag.Uint64("execs", 0, "execution budget (0 = unbounded)")
		seconds   = flag.Float64("seconds", 0, "wall-time budget (0 = unbounded)")
		seed      = flag.Int64("seed", 1, "fuzzer seed")
		isaName   = flag.String("isa", "RV32GC", "foundation simulator ISA configuration")
		famName   = flag.String("suite", "user", "template family: user (paper's trap-terminates template) | trap (trap-recording privileged suite)")
		out       = flag.String("out", "", "write the generated suite to this file")
		asmDir    = flag.String("asm-dir", "", "export the suite as assembler sources into this directory")
		fig4      = flag.Bool("fig4", false, "run the Fig. 4 experiment (all four coverage configurations)")
		noMut     = flag.Bool("no-custom-mutator", false, "ablation: disable the instruction-aware mutator")
		noFlt     = flag.Bool("no-filter", false, "ablation: disable the static filter")
		minimize  = flag.Bool("minimize", false, "minimize the suite to coverage-unique cases before saving")
		seedSuite = flag.String("seed-suite", "", "seed the campaign with a previously generated suite")
		stats     = flag.Bool("stats", false, "print the generated suite's composition statistics")
		fltStats  = flag.Bool("filter-stats", false, "print the static filter's drop-reason histogram and acceptance rate")
		ckptEvery = flag.Uint64("checkpoint-every", 100000, "executions between periodic checkpoints")
		statsJSON = flag.String("stats-json", "", "write deterministic per-worker campaign stats as JSON to this file")
	)
	var shared campaign.Flags
	shared.Register(flag.CommandLine, 1, "parallel fuzzer workers (corpora are merged and minimized)")
	flag.Parse()
	if *execs == 0 && *seconds == 0 {
		*execs = 200000
	}
	dur := time.Duration(*seconds * float64(time.Second))

	if *fig4 {
		runFig4(*execs, dur, *seed)
		return
	}

	// Pre-validate the display-relevant names with the CLI's traditional
	// messages; Execute re-validates the full spec.
	if _, ok := rvnegtest.CoverageConfig(rvnegtest.DefaultFuzzConfig(), *cov); !ok {
		fatalf("unknown coverage configuration %q", *cov)
	}
	isaCfg, err := rvnegtest.ParseISA(*isaName)
	if err != nil {
		fatalf("%v", err)
	}
	if _, ok := rvnegtest.ParseFamily(*famName); !ok {
		fatalf("unknown suite family %q (want user or trap)", *famName)
	}

	spec := campaign.JobSpec{
		Kind:                 campaign.KindFuzz,
		Suite:                *famName,
		Cov:                  *cov,
		ISA:                  *isaName,
		Seed:                 *seed,
		Execs:                *execs,
		CheckpointEvery:      *ckptEvery,
		Minimize:             *minimize,
		SeedSuite:            *seedSuite,
		DisableCustomMutator: *noMut,
		DisableFilter:        *noFlt,
	}
	shared.Apply(&spec)

	ckptDir, err := shared.CheckpointDir(func(dir string) bool {
		return fuzz.HasCheckpoint(filepath.Join(dir, "worker-000"))
	})
	if err != nil {
		fatalf("%v", err)
	}

	campaignMode := ckptDir != "" || shared.Workers > 1
	if campaignMode {
		if ckptDir != "" && *seconds != 0 {
			fatalf("-seconds cannot be combined with checkpointing; resume needs a deterministic -execs bound")
		}
		if *execs == 0 {
			fatalf("campaign mode needs -execs (the per-worker budget)")
		}
	}

	telemetry, err := shared.OpenTelemetry("rvfuzz")
	if err != nil {
		fatalf("%v", err)
	}
	defer telemetry.Close()
	env := shared.Env(ckptDir, telemetry)
	env.WallBudget = dur

	ctx := context.Background()
	if campaignMode {
		var stop context.CancelFunc
		ctx, stop = signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
		defer stop()
	}
	res, err := campaign.Execute(ctx, spec, env)
	if errors.Is(err, campaign.ErrInterrupted) {
		if ckptDir != "" {
			fmt.Fprintf(os.Stderr, "rvfuzz: interrupted, state checkpointed; continue with: rvfuzz -resume %s (plus the original flags)\n", ckptDir)
		} else {
			fmt.Fprintln(os.Stderr, "rvfuzz: interrupted (no -checkpoint directory, progress discarded)")
		}
		telemetry.Close() // os.Exit skips the deferred flush
		os.Exit(130)
	}
	if err != nil {
		fatalf("%v", err)
	}

	suite := res.Suite
	if *seedSuite != "" {
		fmt.Printf("seeded with %d prior test cases\n", res.SeedCases)
	}
	if res.CampaignMode {
		fmt.Printf("configuration %s on %v (seed %d, %d workers)\n", *cov, isaCfg, *seed, shared.Workers)
		fmt.Printf("executions:     %d total\n", res.TotalExecs)
		fmt.Printf("test cases:     %d (merged)\n", res.MergedCases)
		if res.TotalFaults > 0 {
			fmt.Printf("harness faults: %d (see quarantine directory)\n", res.TotalFaults)
		}
		if *fltStats {
			fmt.Print(res.Filter.String())
		}
	} else {
		st := res.WorkerStats[0]
		fmt.Printf("configuration %s on %v (seed %d)\n", *cov, isaCfg, *seed)
		fmt.Printf("executions:     %d (%.0f/s)\n", st.Execs, st.ExecsPerSec)
		fmt.Printf("filtered out:   %d (%.1f%%)\n", st.Dropped, pct(st.Dropped, st.Execs))
		fmt.Printf("test cases:     %d\n", st.TestCases)
		fmt.Printf("coverage:       %d bucket bits over %d points\n", st.CovBits, st.CovPoints)
		if st.Crashes+st.Timeouts > 0 {
			fmt.Printf("crashes: %d, timeouts: %d\n", st.Crashes, st.Timeouts)
		}
		if st.HarnessFaults > 0 {
			fmt.Printf("harness faults: %d (see quarantine directory)\n", st.HarnessFaults)
		}
		if *fltStats {
			fmt.Print(st.Filter.String())
		}
		if *minimize {
			fmt.Printf("minimized:      %d -> %d cases\n", res.MinimizedFrom, len(suite.Cases))
		}
	}
	if *stats {
		fmt.Print(compliance.AnalyzeSuite(suite))
	}
	if *out != "" {
		if err := suite.Save(*out); err != nil {
			fatalf("saving suite: %v", err)
		}
		fmt.Printf("suite written to %s\n", *out)
	}
	if *asmDir != "" {
		if err := suite.WriteASM(*asmDir, template.DefaultLayout); err != nil {
			fatalf("exporting ASM: %v", err)
		}
		fmt.Printf("assembler sources written to %s\n", *asmDir)
	}
	if *statsJSON != "" {
		raw, err := campaign.EncodeFuzzStats(res.WorkerStats, len(suite.Cases))
		if err != nil {
			fatalf("encoding stats: %v", err)
		}
		if err := os.WriteFile(*statsJSON, raw, 0o644); err != nil {
			fatalf("writing stats: %v", err)
		}
		fmt.Printf("campaign stats written to %s\n", *statsJSON)
	}
}

func runFig4(execs uint64, dur time.Duration, seed int64) {
	results, err := rvnegtest.GrowthExperiment(execs, dur, seed)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Println("# Fig. 4: number of generated test cases vs fuzzer executions")
	for _, r := range results {
		fmt.Printf("# %s: number test-cases=%d (execs=%d, %.0f exec/s, %d cov points)\n",
			r.Name, r.Stats.TestCases, r.Stats.Execs, r.Stats.ExecsPerSec, r.Stats.CovPoints)
	}
	fmt.Println("# columns: config execs testcases")
	for _, r := range results {
		for _, p := range r.Stats.Trace {
			fmt.Printf("%s %d %d\n", r.Name, p.Execs, p.TestCases)
		}
	}
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rvfuzz: "+format+"\n", args...)
	os.Exit(1)
}
