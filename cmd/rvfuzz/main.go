// Command rvfuzz runs Phase A of the pipeline: fuzzer-based generation of
// a RISC-V compliance test suite (negative-testing oriented), with the
// paper's coverage configurations v0..v3.
//
// Examples:
//
//	rvfuzz -cov v3 -execs 1000000 -out suite.txt
//	rvfuzz -fig4 -execs 200000            # growth-curve experiment
//	rvfuzz -suite trap -execs 100000      # trap-rich privileged suite
//	rvfuzz -cov v1 -seconds 30 -asm-dir suite-asm
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"rvnegtest"
	"rvnegtest/internal/analysis"
	"rvnegtest/internal/compliance"
	"rvnegtest/internal/fuzz"
	"rvnegtest/internal/obs"
	"rvnegtest/internal/template"
)

func main() {
	var (
		cov        = flag.String("cov", "v3", "coverage configuration: v0|v1|v2|v3")
		execs      = flag.Uint64("execs", 0, "execution budget (0 = unbounded)")
		seconds    = flag.Float64("seconds", 0, "wall-time budget (0 = unbounded)")
		seed       = flag.Int64("seed", 1, "fuzzer seed")
		isaName    = flag.String("isa", "RV32GC", "foundation simulator ISA configuration")
		famName    = flag.String("suite", "user", "template family: user (paper's trap-terminates template) | trap (trap-recording privileged suite)")
		out        = flag.String("out", "", "write the generated suite to this file")
		asmDir     = flag.String("asm-dir", "", "export the suite as assembler sources into this directory")
		fig4       = flag.Bool("fig4", false, "run the Fig. 4 experiment (all four coverage configurations)")
		noMut      = flag.Bool("no-custom-mutator", false, "ablation: disable the instruction-aware mutator")
		noFlt      = flag.Bool("no-filter", false, "ablation: disable the static filter")
		noPre      = flag.Bool("no-predecode", false, "ablation: disable the predecoded execution core (outputs are identical either way)")
		batch      = flag.Int("batch", 0, "run accepted inputs in batched lockstep, N lanes per worker (outputs are identical either way; 0 disables)")
		workers    = flag.Int("workers", 1, "parallel fuzzer workers (corpora are merged and minimized)")
		minimize   = flag.Bool("minimize", false, "minimize the suite to coverage-unique cases before saving")
		seedSuite  = flag.String("seed-suite", "", "seed the campaign with a previously generated suite")
		stats      = flag.Bool("stats", false, "print the generated suite's composition statistics")
		fltStats   = flag.Bool("filter-stats", false, "print the static filter's drop-reason histogram and acceptance rate")
		checkpoint = flag.String("checkpoint", "", "checkpoint campaign state under this directory (enables resume)")
		resume     = flag.String("resume", "", "resume a checkpointed campaign from this directory")
		ckptEvery  = flag.Uint64("checkpoint-every", 100000, "executions between periodic checkpoints")
		quarantine = flag.String("quarantine", "", "save inputs that trigger harness faults into this directory")
		caseSecs   = flag.Float64("case-timeout", 0, "per-case wall-clock watchdog in seconds (0 disables)")
		statsJSON  = flag.String("stats-json", "", "write deterministic per-worker campaign stats as JSON to this file")
		telAddr    = flag.String("telemetry-addr", "", "serve live telemetry on this address: Prometheus-text /metrics, /debug/vars, net/http/pprof")
		eventsPath = flag.String("events", "", "write campaign lifecycle events as NDJSON to this file (render with rvreport -events)")
	)
	flag.Parse()
	if *execs == 0 && *seconds == 0 {
		*execs = 200000
	}
	dur := time.Duration(*seconds * float64(time.Second))

	if *fig4 {
		runFig4(*execs, dur, *seed)
		return
	}

	cfg := rvnegtest.DefaultFuzzConfig()
	var ok bool
	if cfg, ok = rvnegtest.CoverageConfig(cfg, *cov); !ok {
		fatalf("unknown coverage configuration %q", *cov)
	}
	isaCfg, err := rvnegtest.ParseISA(*isaName)
	if err != nil {
		fatalf("%v", err)
	}
	cfg.ISA = isaCfg
	family, ok := rvnegtest.ParseFamily(*famName)
	if !ok {
		fatalf("unknown suite family %q (want user or trap)", *famName)
	}
	cfg.Family = family
	cfg.Seed = *seed
	cfg.DisableCustomMutator = *noMut
	cfg.DisableFilter = *noFlt
	cfg.DisablePredecode = *noPre
	cfg.Batch = *batch
	cfg.CaseTimeout = time.Duration(*caseSecs * float64(time.Second))
	cfg.QuarantineDir = *quarantine
	events, closeTelemetry := setupTelemetry(*telAddr, *eventsPath, &cfg.Obs)
	cfg.Events = events
	defer closeTelemetry()
	if *seedSuite != "" {
		prior, err := rvnegtest.LoadSuite(*seedSuite)
		if err != nil {
			fatalf("loading seed suite: %v", err)
		}
		cfg.Seeds = prior.Cases
		fmt.Printf("seeded with %d prior test cases\n", len(prior.Cases))
	}

	ckptDir := *checkpoint
	if *resume != "" {
		if ckptDir != "" && ckptDir != *resume {
			fatalf("-checkpoint and -resume name different directories")
		}
		ckptDir = *resume
		if !fuzz.HasCheckpoint(filepath.Join(ckptDir, "worker-000")) {
			fatalf("no checkpoint found under %s", ckptDir)
		}
	}

	var suite *rvnegtest.Suite
	var workerStats []fuzz.Stats
	if ckptDir != "" || *workers > 1 {
		if ckptDir != "" && *seconds != 0 {
			fatalf("-seconds cannot be combined with checkpointing; resume needs a deterministic -execs bound")
		}
		if *execs == 0 {
			fatalf("campaign mode needs -execs (the per-worker budget)")
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		cases, cstats, err := fuzz.Campaign(ctx, cfg, fuzz.CampaignConfig{
			Workers:         *workers,
			ExecsEach:       *execs,
			CheckpointDir:   ckptDir,
			CheckpointEvery: *ckptEvery,
			Minimize:        *workers > 1 || *minimize,
		})
		if errors.Is(err, fuzz.ErrInterrupted) {
			if ckptDir != "" {
				fmt.Fprintf(os.Stderr, "rvfuzz: interrupted, state checkpointed; continue with: rvfuzz -resume %s (plus the original flags)\n", ckptDir)
			} else {
				fmt.Fprintln(os.Stderr, "rvfuzz: interrupted (no -checkpoint directory, progress discarded)")
			}
			closeTelemetry() // os.Exit skips the deferred flush
			os.Exit(130)
		}
		if err != nil {
			fatalf("%v", err)
		}
		workerStats = cstats
		var totalExecs, totalFaults uint64
		var merged analysis.Stats
		for _, s := range cstats {
			totalExecs += s.Execs
			totalFaults += s.HarnessFaults
			merged.Merge(s.Filter)
		}
		suite = &rvnegtest.Suite{
			Cases:  cases,
			Family: cfg.Family,
			Origin: fmt.Sprintf("parallel fuzzer workers=%d seed=%d execs=%d", *workers, *seed, totalExecs),
		}
		if cfg.Family == rvnegtest.FamilyTrap {
			// Mirror GenerateSuite: the directed privileged probes ride
			// along with every generated trap suite.
			suite.Cases = append(suite.Cases, fuzz.TrapDirectedCases()...)
		}
		fmt.Printf("configuration %s on %v (seed %d, %d workers)\n", *cov, isaCfg, *seed, *workers)
		fmt.Printf("executions:     %d total\n", totalExecs)
		fmt.Printf("test cases:     %d (merged)\n", len(cases))
		if totalFaults > 0 {
			fmt.Printf("harness faults: %d (see quarantine directory)\n", totalFaults)
		}
		if *fltStats {
			fmt.Print(merged.String())
		}
	} else {
		var st rvnegtest.FuzzStats
		suite, st, err = rvnegtest.GenerateSuite(cfg, *execs, dur)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("configuration %s on %v (seed %d)\n", *cov, isaCfg, *seed)
		fmt.Printf("executions:     %d (%.0f/s)\n", st.Execs, st.ExecsPerSec)
		fmt.Printf("filtered out:   %d (%.1f%%)\n", st.Dropped, pct(st.Dropped, st.Execs))
		fmt.Printf("test cases:     %d\n", st.TestCases)
		fmt.Printf("coverage:       %d bucket bits over %d points\n", st.CovBits, st.CovPoints)
		if st.Crashes+st.Timeouts > 0 {
			fmt.Printf("crashes: %d, timeouts: %d\n", st.Crashes, st.Timeouts)
		}
		if st.HarnessFaults > 0 {
			fmt.Printf("harness faults: %d (see quarantine directory)\n", st.HarnessFaults)
		}
		if *fltStats {
			fmt.Print(st.Filter.String())
		}
		workerStats = []fuzz.Stats{st}
		if *minimize {
			min, err := fuzz.Minimize(suite.Cases, cfg)
			if err != nil {
				fatalf("minimizing: %v", err)
			}
			fmt.Printf("minimized:      %d -> %d cases\n", len(suite.Cases), len(min))
			suite.Cases = min
		}
	}
	if *stats {
		fmt.Print(compliance.AnalyzeSuite(suite))
	}
	if *out != "" {
		if err := suite.Save(*out); err != nil {
			fatalf("saving suite: %v", err)
		}
		fmt.Printf("suite written to %s\n", *out)
	}
	if *asmDir != "" {
		if err := suite.WriteASM(*asmDir, template.DefaultLayout); err != nil {
			fatalf("exporting ASM: %v", err)
		}
		fmt.Printf("assembler sources written to %s\n", *asmDir)
	}
	if *statsJSON != "" {
		det := make([]fuzz.Stats, len(workerStats))
		for i, s := range workerStats {
			det[i] = s.Deterministic()
		}
		payload := struct {
			Workers []fuzz.Stats `json:"workers"`
			Cases   int          `json:"cases"`
		}{det, len(suite.Cases)}
		raw, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			fatalf("encoding stats: %v", err)
		}
		if err := os.WriteFile(*statsJSON, append(raw, '\n'), 0o644); err != nil {
			fatalf("writing stats: %v", err)
		}
		fmt.Printf("campaign stats written to %s\n", *statsJSON)
	}
}

func runFig4(execs uint64, dur time.Duration, seed int64) {
	results, err := rvnegtest.GrowthExperiment(execs, dur, seed)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Println("# Fig. 4: number of generated test cases vs fuzzer executions")
	for _, r := range results {
		fmt.Printf("# %s: number test-cases=%d (execs=%d, %.0f exec/s, %d cov points)\n",
			r.Name, r.Stats.TestCases, r.Stats.Execs, r.Stats.ExecsPerSec, r.Stats.CovPoints)
	}
	fmt.Println("# columns: config execs testcases")
	for _, r := range results {
		for _, p := range r.Stats.Trace {
			fmt.Printf("%s %d %d\n", r.Name, p.Execs, p.TestCases)
		}
	}
}

// setupTelemetry wires the optional live-metrics server and NDJSON event
// stream. It stores a fresh registry into *reg when an address is given,
// returns the event log (nil when unused) and a close function that
// flushes the event file and shuts the server down.
func setupTelemetry(addr, eventsPath string, reg **obs.Registry) (*obs.EventLog, func()) {
	var closers []func()
	if addr != "" {
		*reg = obs.NewRegistry()
		srv, err := obs.Serve(addr, *reg)
		if err != nil {
			fatalf("telemetry server: %v", err)
		}
		fmt.Fprintf(os.Stderr, "rvfuzz: telemetry at http://%s/metrics (also /debug/vars, /debug/pprof/)\n", srv.Addr)
		closers = append(closers, func() { srv.Close() })
	}
	var events *obs.EventLog
	if eventsPath != "" {
		var err error
		events, err = obs.CreateEventLog(eventsPath)
		if err != nil {
			fatalf("events file: %v", err)
		}
		closers = append(closers, func() {
			if err := events.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "rvfuzz: closing events file: %v\n", err)
			}
		})
	}
	return events, func() {
		for _, c := range closers {
			c()
		}
	}
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rvfuzz: "+format+"\n", args...)
	os.Exit(1)
}
