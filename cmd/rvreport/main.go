// Command rvreport reproduces the paper's full evaluation in one run and
// emits a markdown report: Table I, the Fig. 4 growth summary, throughput,
// the defect findings breakdown, the trap-rich privileged-suite results,
// the baseline comparison (E9), the CSR framework results (E10) and the
// suite composition. With the default budget it finishes in a few
// minutes; -execs scales it.
//
//	rvreport -execs 1000000 > report.md
package main

import (
	"flag"
	"fmt"
	"os"

	"rvnegtest"
	"rvnegtest/internal/compliance"
	"rvnegtest/internal/csrtest"
	"rvnegtest/internal/isa"
	"rvnegtest/internal/sim"
	"rvnegtest/internal/template"
	"rvnegtest/internal/torture"
)

func main() {
	var (
		execs      = flag.Uint64("execs", 300000, "fuzzer execution budget for the main suite")
		seed       = flag.Int64("seed", 1, "campaign seed")
		workers    = flag.Int("workers", -1, "compliance engine workers (-1 = one per CPU; the report is identical for any value)")
		eventsPath = flag.String("events", "", "render a telemetry events file (NDJSON from rvfuzz/rvcompliance/rvnegtestd -events) as a stage-time breakdown and exit")
		jobFilter  = flag.String("job", "", "with -events: restrict the report to this job ID (daemon streams interleave jobs)")
	)
	flag.Parse()

	if *eventsPath != "" {
		renderEvents(*eventsPath, *jobFilter)
		return
	}

	fmt.Println("# rvnegtest evaluation report")
	fmt.Println()
	fmt.Printf("Budget: %d executions, seed %d. Regenerate: `go run ./cmd/rvreport -execs %d -seed %d`.\n\n",
		*execs, *seed, *execs, *seed)

	// Fig. 4 (reuses the v3 campaign for the main suite afterwards).
	fmt.Println("## Fig. 4 — test-case growth per coverage configuration")
	fmt.Println()
	fmt.Println("| config | coverage points | test cases | execs/s |")
	fmt.Println("|---|---|---|---|")
	results, err := rvnegtest.GrowthExperiment(*execs, 0, *seed)
	check(err)
	for _, r := range results {
		fmt.Printf("| %s | %d | %d | %.0f |\n", r.Name, r.Stats.CovPoints, r.Stats.TestCases, r.Stats.ExecsPerSec)
	}
	fmt.Println()
	fmt.Println("Paper (30 min each): v0=689, v1=4066, v2=8531, v3=13540; ordering and")
	fmt.Println("early saturation are the reproduced properties.")
	fmt.Println()

	// Main suite = a fresh v3 campaign with the same budget.
	cfg := rvnegtest.DefaultFuzzConfig()
	cfg.Seed = *seed
	suite, st, err := rvnegtest.GenerateSuite(cfg, *execs, 0)
	check(err)

	fmt.Println("## Table I — signature mismatches against riscvOVPsim")
	fmt.Println()
	tableRunner := compliance.DefaultRunner()
	tableRunner.Workers = *workers
	rep, err := rvnegtest.RunCompliance(suite, tableRunner)
	check(err)
	fmt.Println("```")
	fmt.Print(rep.Render())
	fmt.Println("```")
	fmt.Println()
	if rep.Degraded() {
		fmt.Println("**Warning:** this run is degraded — some cells carry harness faults")
		fmt.Println("(`unhealthy` entries or skipped cases); their values are not real")
		fmt.Println("verdicts. See the fault notes under the table above.")
		fmt.Println()
	}
	fmt.Println("Paper: Spike 7/9/9; VP 5/32//; sail crash/crash//; GRIFT 124/1047/141.")
	fmt.Println()
	fmt.Println("### Findings by mismatch category (section V-B)")
	fmt.Println()
	fmt.Println("```")
	fmt.Print(rep.BugFindings())
	fmt.Println("```")
	fmt.Println()

	// Trap-rich privileged suite: a smaller trap-family campaign whose
	// signatures carry (mcause, mepc, mtval, mstatus) records, exposing
	// the privileged-architecture defect classes the user-level suite
	// cannot see.
	fmt.Println("## Trap-rich privileged suite (`-suite trap`)")
	fmt.Println()
	trapExecs := *execs / 10
	if trapExecs < 1000 {
		trapExecs = 1000
	}
	trapCfg := rvnegtest.DefaultFuzzConfig()
	trapCfg.Seed = *seed
	trapCfg.Family = rvnegtest.FamilyTrap
	trapSuite, trapSt, err := rvnegtest.GenerateSuite(trapCfg, trapExecs, 0)
	check(err)
	fmt.Printf("%d trap-family cases from %d executions (plus the directed privileged probes).\n\n",
		len(trapSuite.Cases), trapSt.Execs)
	trapRunner := compliance.DefaultRunner()
	trapRunner.Workers = *workers
	trapRep, err := rvnegtest.RunCompliance(trapSuite, trapRunner)
	check(err)
	fmt.Println("```")
	fmt.Print(trapRep.Render())
	fmt.Println("```")
	fmt.Println()
	fmt.Println("### Trap-suite findings (trap-record divergences are the privileged-mode classes)")
	fmt.Println()
	fmt.Println("```")
	fmt.Print(trapRep.BugFindings())
	fmt.Println("```")
	fmt.Println()

	fmt.Println("## Throughput (paper: 45,873 execs/s average)")
	fmt.Println()
	fmt.Printf("Measured: %.0f executions/second (v3 configuration).\n\n", st.ExecsPerSec)
	fmt.Printf("Compliance engine: %s.\n\n", tableRunner.Stats)

	fmt.Println("## Suite composition")
	fmt.Println()
	fmt.Println("```")
	fmt.Print(compliance.AnalyzeSuite(suite))
	fmt.Println("```")
	fmt.Println()

	// E9 — baselines.
	fmt.Println("## Baselines (E9): positive-only testing misses the gap")
	fmt.Println()
	fmt.Println("| suite | total mismatches across all configurations |")
	fmt.Println("|---|---|")
	tortureTotal, officialTotal, fuzzTotal := 0, 0, 0
	for i := range rep.Configs {
		for j := range rep.Sims {
			fuzzTotal += rep.Cells[i][j].Mismatches
		}
	}
	for _, c := range []isa.Config{isa.RV32I, isa.RV32IMC, isa.RV32GC} {
		r := compliance.DefaultRunner()
		r.Workers = *workers
		r.Configs = []isa.Config{c}
		tortureSuite, err := torture.Suite(*seed, c, 400, 16)
		check(err)
		tr, err := r.Run(tortureSuite)
		check(err)
		officialSuite, err := compliance.OfficialStyleSuite(c)
		check(err)
		or, err := r.Run(officialSuite)
		check(err)
		for j := range tr.Sims {
			tortureTotal += tr.Cells[0][j].Mismatches
			officialTotal += or.Cells[0][j].Mismatches
		}
	}
	fmt.Printf("| torture-style positive baseline | %d |\n", tortureTotal)
	fmt.Printf("| official-style directed suite | %d (the SC.W case the paper mentions) |\n", officialTotal)
	fmt.Printf("| fuzzer (this suite) | %d |\n\n", fuzzTotal)

	// E10 — CSR framework.
	fmt.Println("## CSR framework (E10, paper section VI)")
	fmt.Println()
	tests := csrtest.Suite(isa.RV32GC)
	covered, total, _ := csrtest.Coverage(tests, isa.RV32GC)
	fmt.Printf("%d fine-grained CSR tests; coverage metric %d/%d (CSR, access) points.\n\n", len(tests), covered, total)
	fmt.Println("| simulator | passed | skipped (capability) | failed |")
	fmt.Println("|---|---|---|---|")
	for _, v := range sim.All {
		if !v.Supports(isa.RV32GC) {
			fmt.Printf("| %s | / | / | / |\n", v.Name)
			continue
		}
		rs, err := csrtest.Run(v, template.Platform{Layout: template.DefaultLayout, Cfg: isa.RV32GC}, tests)
		check(err)
		p, s, f := 0, 0, 0
		for _, r := range rs {
			switch {
			case r.Skipped:
				s++
			case r.Crashed || r.TimedOut || len(r.Mismatch) > 0:
				f++
			default:
				p++
			}
		}
		fmt.Printf("| %s | %d | %d | %d |\n", v.Name, p, s, f)
	}
	fmt.Println()
	fmt.Println("See EXPERIMENTS.md for the full paper-vs-measured record.")
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "rvreport:", err)
		os.Exit(1)
	}
}
