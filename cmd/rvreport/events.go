package main

import (
	"fmt"
	"os"
	"sort"
	"time"

	"rvnegtest/internal/obs"
)

// renderEvents implements `rvreport -events FILE [-job ID]`: it reads a
// telemetry event stream written by `rvfuzz -events`, `rvcompliance
// -events` or `rvnegtestd -events` and renders a markdown report — the
// per-stage time breakdown (from the last stage_summary each worker
// emitted), the event-type counts, and the per-simulator cell timings
// and health when the stream came from a compliance run.
//
// A daemon stream interleaves events from many jobs (each stamped with a
// job ID); folding them into one aggregate would blend unrelated
// campaigns into bogus totals, so such streams render one section per
// job. -job restricts the report to a single job's events.
func renderEvents(path, jobFilter string) {
	f, err := os.Open(path)
	check(err)
	defer f.Close()
	evs, err := obs.ReadEvents(f)
	check(err)
	if jobFilter != "" {
		filtered := evs[:0]
		for _, ev := range evs {
			if ev.Job == jobFilter {
				filtered = append(filtered, ev)
			}
		}
		evs = filtered
		if len(evs) == 0 {
			fmt.Printf("no events for job %s in %s\n", jobFilter, path)
			return
		}
	}
	if len(evs) == 0 {
		fmt.Println("no events in", path)
		return
	}

	// Group by job ID, preserving first-appearance order. CLI streams
	// carry no job IDs and collapse into one unlabeled group, rendering
	// exactly as they always have.
	var order []string
	groups := map[string][]obs.Event{}
	for _, ev := range evs {
		if _, ok := groups[ev.Job]; !ok {
			order = append(order, ev.Job)
		}
		groups[ev.Job] = append(groups[ev.Job], ev)
	}

	span := time.Duration(evs[len(evs)-1].TNS)
	fmt.Printf("# Telemetry event report: %s\n\n", path)
	fmt.Printf("%d events spanning %v.\n\n", len(evs), span.Round(time.Millisecond))

	if len(order) == 1 && order[0] == "" {
		renderStream(groups[""], "##")
		return
	}
	for _, job := range order {
		name := job
		if name == "" {
			name = "(unattributed)"
		}
		group := groups[job]
		fmt.Printf("## Job %s — %d events%s\n\n", name, len(group), lifecycleNote(group))
		renderStream(group, "###")
	}
}

// lifecycleNote summarizes a job group's scheduler lifecycle events for
// the section heading ("submitted, started, done"), empty when the group
// has none.
func lifecycleNote(evs []obs.Event) string {
	var phases []string
	for _, ev := range evs {
		switch ev.Type {
		case "job_submitted", "job_start", "job_resume", "job_suspend",
			"job_done", "job_failed", "job_canceled":
			phases = append(phases, ev.Type[len("job_"):])
		}
	}
	if len(phases) == 0 {
		return ""
	}
	out := " ("
	for i, p := range phases {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out + ")"
}

// renderStream renders one event stream's analysis sections at heading
// level h ("##" for a whole-file stream, "###" under a per-job heading).
func renderStream(evs []obs.Event, h string) {
	counts := map[string]int{}
	// The last stage_summary per worker carries that worker's cumulative
	// stage totals; summing the latest one of each worker gives the
	// campaign-wide breakdown without double counting.
	summaries := map[int]map[string]obs.StageSummary{}
	simTime := map[string]int64{} // cell_done DurNS per simulator
	health := map[string]*sutHealth{}
	crashes := 0
	sickbay := func(sim string) *sutHealth {
		h := health[sim]
		if h == nil {
			h = &sutHealth{}
			health[sim] = h
		}
		return h
	}
	for _, ev := range evs {
		counts[ev.Type]++
		switch ev.Type {
		case "stage_summary":
			summaries[ev.Worker] = ev.Stages
		case "cell_done":
			simTime[ev.Sim] += ev.DurNS
		case "crash", "quarantine":
			crashes++
		case "sut_restart":
			sickbay(ev.Sim).restarts++
		case "sut_retry":
			sickbay(ev.Sim).retries++
		case "adapter_fault":
			sickbay(ev.Sim).faults++
		case "sut_probe_failed":
			sickbay(ev.Sim).probeFails++
		case "breaker_open":
			sickbay(ev.Sim).opens++
		case "breaker_half_open":
			sickbay(ev.Sim).halfOpens++
		case "breaker_close":
			sickbay(ev.Sim).closes++
		}
	}

	fmt.Printf("%s Event counts\n", h)
	fmt.Println()
	fmt.Println("| event | count |")
	fmt.Println("|---|---|")
	types := make([]string, 0, len(counts))
	for t := range counts {
		types = append(types, t)
	}
	sort.Strings(types)
	for _, t := range types {
		fmt.Printf("| %s | %d |\n", t, counts[t])
	}
	fmt.Println()

	if len(summaries) > 0 {
		// Fold the per-worker summaries into campaign-wide stage
		// totals. The maps are flattened into a pair slice first (the
		// collect is order-insensitive, the fold over it is a
		// commutative sum), and the table below renders in canonical
		// stage order — so worker/stage map iteration order cannot
		// leak into the report.
		type stagePair struct {
			stage string
			s     obs.StageSummary
		}
		var pairs []stagePair
		for _, ss := range summaries {
			for stage, s := range ss {
				pairs = append(pairs, stagePair{stage, s})
			}
		}
		total := map[string]obs.StageSummary{}
		for _, p := range pairs {
			t := total[p.stage]
			t.Count += p.s.Count
			t.TotalNS += p.s.TotalNS
			total[p.stage] = t
		}
		var grand uint64
		for _, s := range total {
			grand += s.TotalNS
		}
		fmt.Printf("%s Stage-time breakdown (%d worker(s))\n", h, len(summaries))
		fmt.Println()
		fmt.Println("| stage | count | total | mean | share |")
		fmt.Println("|---|---|---|---|---|")
		// Canonical stage order, not map order.
		for st := obs.Stage(0); st < obs.NumStages; st++ {
			s, ok := total[st.String()]
			if !ok || s.Count == 0 {
				continue
			}
			mean := time.Duration(s.TotalNS / s.Count)
			share := 0.0
			if grand > 0 {
				share = 100 * float64(s.TotalNS) / float64(grand)
			}
			fmt.Printf("| %s | %d | %v | %v | %.1f%% |\n",
				st, s.Count, time.Duration(s.TotalNS).Round(time.Millisecond), mean, share)
		}
		fmt.Println()
	}

	if len(simTime) > 0 {
		fmt.Printf("%s Per-simulator cell time (compliance cell_done events)\n", h)
		fmt.Println()
		fmt.Println("| simulator | total |")
		fmt.Println("|---|---|")
		sims := make([]string, 0, len(simTime))
		for s := range simTime {
			sims = append(sims, s)
		}
		sort.Strings(sims)
		for _, s := range sims {
			fmt.Printf("| %s | %v |\n", s, time.Duration(simTime[s]).Round(time.Millisecond))
		}
		fmt.Println()
	}

	if len(health) > 0 {
		fmt.Printf("%s SUT health (supervision events)\n", h)
		fmt.Println()
		fmt.Println("| simulator | restarts | retries | adapter faults | breaker opened | half-open probes | recovered | probe failures |")
		fmt.Println("|---|---|---|---|---|---|---|---|")
		sims := make([]string, 0, len(health))
		for s := range health {
			sims = append(sims, s)
		}
		sort.Strings(sims)
		for _, s := range sims {
			h := health[s]
			fmt.Printf("| %s | %d | %d | %d | %d | %d | %d | %d |\n",
				s, h.restarts, h.retries, h.faults, h.opens, h.halfOpens, h.closes, h.probeFails)
		}
		fmt.Println()
	}

	if crashes > 0 {
		fmt.Printf("%d crash/quarantine event(s); grep the NDJSON for `\"type\":\"crash\"` details.\n", crashes)
	}
}

// sutHealth aggregates one simulator's supervision events: the breaker
// lifecycle applies to every SUT column, the restart/retry/fault rows to
// external adapter columns.
type sutHealth struct {
	restarts   int // sut_restart: adapter process respawns
	retries    int // sut_retry: re-attempted runs after an adapter fault
	faults     int // adapter_fault: exchanges that exhausted the retry budget
	probeFails int // sut_probe_failed: capability preflight failures
	opens      int // breaker_open: tripped (incl. failed recovery probes)
	halfOpens  int // breaker_half_open: cool-down expired, probe admitted
	closes     int // breaker_close: successful half-open recovery
}
