// Benchmarks regenerating the paper's evaluation artefacts (see DESIGN.md
// §6 for the experiment index and EXPERIMENTS.md for paper-vs-measured):
//
//	E1 BenchmarkFig4_*           — Fig. 4 growth curves per coverage config
//	E2 BenchmarkTableI           — Table I signature-mismatch counts
//	E3 BenchmarkFuzzerThroughput — executions/second (paper: 45,873 avg)
//	E4 BenchmarkBugDetection     — seeded-defect detection matrix
//	E6 BenchmarkAblationFilter   — spurious cross-platform mismatches
//	E7 BenchmarkAblationMutator  — custom-mutator contribution
//
// Counts are emitted as custom metrics; the absolute numbers scale with
// the per-iteration execution budget (the paper's 30-minute campaigns are
// reproduced by cmd/rvfuzz and cmd/rvcompliance with larger budgets).
package rvnegtest

import (
	"sync"
	"testing"

	"rvnegtest/internal/compliance"
	"rvnegtest/internal/coverage"
	"rvnegtest/internal/csrtest"
	"rvnegtest/internal/fuzz"
	"rvnegtest/internal/isa"
	"rvnegtest/internal/sim"
	"rvnegtest/internal/template"
	"rvnegtest/internal/torture"
)

// benchBudget is the per-iteration execution budget of the campaign
// benchmarks: big enough for the curves' shape, small enough for -bench.
const benchBudget = 50000

// runCampaign executes one fuzzing campaign and reports its metrics.
func runCampaign(b *testing.B, covName string, mutate func(*fuzz.Config)) fuzz.Stats {
	b.Helper()
	var last fuzz.Stats
	for i := 0; i < b.N; i++ {
		cfg := fuzz.DefaultConfig()
		opts, ok := coverage.ByName(covName)
		if !ok {
			b.Fatalf("unknown coverage config %q", covName)
		}
		cfg.Coverage = opts
		cfg.Seed = int64(i + 1)
		if mutate != nil {
			mutate(&cfg)
		}
		f, err := fuzz.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		f.Run(benchBudget, 0)
		last = f.Stats()
	}
	b.ReportMetric(float64(last.TestCases), "testcases")
	b.ReportMetric(last.ExecsPerSec, "execs/s")
	b.ReportMetric(float64(last.Dropped)/float64(last.Execs)*100, "%dropped")
	return last
}

// E1 — Fig. 4: test-case growth for the four coverage configurations. The
// relationship v0 < v1 < v2 <= v3 in the testcases metric is the figure's
// headline result.
func BenchmarkFig4_V0(b *testing.B) { runCampaign(b, "v0", nil) }
func BenchmarkFig4_V1(b *testing.B) { runCampaign(b, "v1", nil) }
func BenchmarkFig4_V2(b *testing.B) { runCampaign(b, "v2", nil) }
func BenchmarkFig4_V3(b *testing.B) { runCampaign(b, "v3", nil) }

// suiteOnce generates one shared v3 suite for the Table I benchmarks.
var (
	suiteOnce  sync.Once
	benchSuite *compliance.Suite
)

func sharedSuite(b *testing.B) *compliance.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		cfg := fuzz.DefaultConfig()
		cfg.Seed = 99
		f, err := fuzz.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		f.Run(4*benchBudget, 0)
		benchSuite = &compliance.Suite{Cases: f.Corpus(), Origin: "bench"}
	})
	return benchSuite
}

// E2 — Table I: run the generated suite across the simulator models and
// report the per-cell mismatch counts as metrics.
func BenchmarkTableI(b *testing.B) {
	suite := sharedSuite(b)
	var rep *compliance.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = compliance.DefaultRunner().Run(suite)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(suite.Cases)), "cases")
	for i, cfg := range rep.Configs {
		for j, name := range rep.Sims {
			c := rep.Cells[i][j]
			if !c.Supported {
				continue
			}
			metric := cfg.String() + "/" + name
			if c.Crashes > 0 {
				b.ReportMetric(float64(c.Crashes), metric+"_crashes")
			}
			b.ReportMetric(float64(c.Mismatches), metric+"_mismatch")
		}
	}
}

// E2b — parallel Table I scaling: the same workload as BenchmarkTableI on
// the sharded engine. The report is bit-identical at every worker count
// (asserted in internal/compliance's tests); the metric of interest here
// is near-linear cases/s scaling with the worker count.
func benchTableIWorkers(b *testing.B, workers int) {
	suite := sharedSuite(b)
	b.ResetTimer()
	var st compliance.RunStats
	for i := 0; i < b.N; i++ {
		r := compliance.DefaultRunner()
		r.Workers = workers
		if _, err := r.Run(suite); err != nil {
			b.Fatal(err)
		}
		st = r.Stats
	}
	b.ReportMetric(st.CasesPerSec, "cases/s")
	b.ReportMetric(float64(len(suite.Cases)), "cases")
}

func BenchmarkTableIParallel1(b *testing.B) { benchTableIWorkers(b, 1) }
func BenchmarkTableIParallel2(b *testing.B) { benchTableIWorkers(b, 2) }
func BenchmarkTableIParallel4(b *testing.B) { benchTableIWorkers(b, 4) }
func BenchmarkTableIParallel8(b *testing.B) { benchTableIWorkers(b, 8) }

// E2c — Table I with the predecoded execution core disabled: the
// classical decode loop baseline scripts/exec_bench.sh compares against.
func BenchmarkTableINoPredecode(b *testing.B) {
	suite := sharedSuite(b)
	b.ResetTimer()
	var st compliance.RunStats
	for i := 0; i < b.N; i++ {
		r := compliance.DefaultRunner()
		r.Workers = 1
		r.DisablePredecode = true
		if _, err := r.Run(suite); err != nil {
			b.Fatal(err)
		}
		st = r.Stats
	}
	b.ReportMetric(st.CasesPerSec, "cases/s")
	b.ReportMetric(float64(len(suite.Cases)), "cases")
}

// E3 — fuzzer throughput (the paper: 45,873 executions/second average on
// an i5-7200U, with the template pre-compiled and the memory restored
// between runs).
func BenchmarkFuzzerThroughput(b *testing.B) { benchFuzzerThroughput(b, false) }

// E3b — the same workload with the predecoded execution core disabled
// (every fetch through the classical decode path).
func BenchmarkFuzzerThroughputNoPredecode(b *testing.B) { benchFuzzerThroughput(b, true) }

func benchFuzzerThroughput(b *testing.B, noPredecode bool) {
	cfg := fuzz.DefaultConfig()
	cfg.Seed = 5
	cfg.DisablePredecode = noPredecode
	f, err := fuzz.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Step()
	}
	b.StopTimer()
	st := f.Stats()
	b.ReportMetric(st.ExecsPerSec, "execs/s")
}

// E4 — the seeded-defect detection matrix: every defect class reported in
// section V-B must be detectable through a signature mismatch, a crash or
// a timeout of its hand-crafted trigger.
func BenchmarkBugDetection(b *testing.B) {
	type trigger struct {
		name string
		v    *sim.Variant
		cfg  isa.Config
		bs   []byte
	}
	enc := isa.MustEncode
	w := func(ws ...uint32) []byte {
		var out []byte
		for _, x := range ws {
			out = append(out, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
		}
		return out
	}
	triggers := []trigger{
		{"spike-ecall", sim.Spike, isa.RV32I, w(0x00000073)},
		{"vp-ecall-mask", sim.VP, isa.RV32I, w(0x00000073 | 5<<7)},
		{"vp-reserved-c", sim.VP, isa.RV32IMC, []byte{0x02, 0x40, 0, 0}},
		{"grift-link-write", sim.Grift, isa.RV32I, w(enc(isa.Inst{Op: isa.OpJAL, Rd: 1, Imm: 6}))},
		{"grift-imc-config", sim.Grift, isa.RV32IMC, w(enc(isa.Inst{Op: isa.OpFADDS, Rd: 1, Rs1: 2, Rs2: 3}))},
		{"grift-sc-reservation", sim.Grift, isa.RV32GC, w(enc(isa.Inst{Op: isa.OpSCW, Rd: 5, Rs1: 30, Rs2: 1}))},
		{"sail-loose-funct7", sim.Sail, isa.RV32I, w(enc(isa.Inst{Op: isa.OpADD, Rd: 5, Rs1: 1, Rs2: 2}) | 0x13<<25)},
		{"sail-crash", sim.Sail, isa.RV32IMC, []byte{0x00, 0x84, 0, 0}},
		{"sail-nonterm", sim.Sail, isa.RV32I, w(0x00002063 | isa.PutImmB(-4)&^(7<<12))},
		{"ovpsim-custom", sim.OVPSim, isa.RV32I, w(0x0000400b)},
	}
	detected := 0
	for i := 0; i < b.N; i++ {
		detected = 0
		for _, tr := range triggers {
			p := template.Platform{Layout: template.DefaultLayout, Cfg: tr.cfg}
			refSim, err := sim.New(sim.Reference, p)
			if err != nil {
				b.Fatal(err)
			}
			sut, err := sim.New(tr.v, p)
			if err != nil {
				b.Fatal(err)
			}
			ref, got := refSim.Run(tr.bs), sut.Run(tr.bs)
			if got.Crashed || got.TimedOut || differs(ref.Signature, got.Signature) {
				detected++
			} else {
				b.Errorf("trigger %s not detected", tr.name)
			}
		}
	}
	b.ReportMetric(float64(detected), "bugs_detected")
	b.ReportMetric(float64(len(triggers)), "bugs_seeded")
}

func differs(a, b []uint32) bool {
	if len(a) != len(b) {
		return true
	}
	for i := range a {
		if a[i] != b[i] {
			return true
		}
	}
	return false
}

// E6 — filter ablation: without the static filter, a suite produces
// spurious signature mismatches between two specification-compliant
// platforms (different unaligned/WFI/EBREAK behaviour); with the filter
// the count must be exactly zero. This is the property that makes the
// paper's approach fully automatic.
func BenchmarkAblationFilter(b *testing.B) {
	spurious := func(disable bool, seed int64) int {
		cfg := fuzz.DefaultConfig()
		cfg.Coverage = coverage.V1()
		cfg.DisableFilter = disable
		cfg.Seed = seed
		f, err := fuzz.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		f.Run(benchBudget/2, 0)
		base := template.Platform{Layout: template.DefaultLayout, Cfg: isa.RV32GC}
		alt := base
		alt.TrapUnaligned = true
		alt.WFIHalts = true
		alt.EbreakHalts = true
		sa, err := sim.New(sim.Reference, base)
		if err != nil {
			b.Fatal(err)
		}
		sb, err := sim.New(sim.Reference, alt)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for _, bs := range f.Corpus() {
			oa, ob := sa.Run(bs), sb.Run(bs)
			if oa.Crashed || oa.TimedOut || ob.Crashed || ob.TimedOut || differs(oa.Signature, ob.Signature) {
				n++
			}
		}
		return n
	}
	var withFilter, withoutFilter int
	for i := 0; i < b.N; i++ {
		withFilter = spurious(false, int64(i+1))
		withoutFilter = spurious(true, int64(i+1))
	}
	if withFilter != 0 {
		b.Errorf("filtered suite produced %d spurious mismatches", withFilter)
	}
	b.ReportMetric(float64(withFilter), "spurious_filtered")
	b.ReportMetric(float64(withoutFilter), "spurious_unfiltered")
}

// E7 — custom-mutator ablation: the instruction-aware mutator multiplies
// the number of collected test cases under an identical budget.
func BenchmarkAblationMutator(b *testing.B) {
	var with, without fuzz.Stats
	for i := 0; i < b.N; i++ {
		seed := int64(i + 1)
		run := func(disable bool) fuzz.Stats {
			cfg := fuzz.DefaultConfig()
			cfg.Coverage = coverage.V1()
			cfg.DisableCustomMutator = disable
			cfg.Seed = seed
			f, err := fuzz.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			f.Run(benchBudget, 0)
			return f.Stats()
		}
		with = run(false)
		without = run(true)
	}
	b.ReportMetric(float64(with.TestCases), "testcases_with")
	b.ReportMetric(float64(without.TestCases), "testcases_without")
}

// E9 — baseline comparison: positive-only test generation (the
// torture-style baseline and the official-style directed suite) against
// the negative-testing fuzzer, at an equal-order test-case count. The
// paper's thesis in one table: positive suites find (almost) nothing of
// the seeded defect population; the fuzzer finds all classes.
func BenchmarkBaselineComparison(b *testing.B) {
	var tortureTotal, officialTotal, fuzzTotal int
	for i := 0; i < b.N; i++ {
		tortureTotal, officialTotal, fuzzTotal = 0, 0, 0
		cfgs := []isa.Config{isa.RV32I, isa.RV32IMC, isa.RV32GC}
		// Positive suites are per-extension; run each on its own config.
		for _, cfg := range cfgs {
			tortureSuite, err := torture.Suite(int64(i+1), cfg, 400, 16)
			if err != nil {
				b.Fatal(err)
			}
			officialSuite, err := compliance.OfficialStyleSuite(cfg)
			if err != nil {
				b.Fatal(err)
			}
			for _, s := range []*compliance.Suite{tortureSuite, officialSuite} {
				r := compliance.DefaultRunner()
				r.Configs = []isa.Config{cfg}
				rep, err := r.Run(s)
				if err != nil {
					b.Fatal(err)
				}
				for j := range rep.Sims {
					if s.Origin[0] == 't' {
						tortureTotal += rep.Cells[0][j].Mismatches
					} else {
						officialTotal += rep.Cells[0][j].Mismatches
					}
				}
			}
		}
		// The fuzzer's single suite serves all configurations.
		rep, err := compliance.DefaultRunner().Run(sharedSuite(b))
		if err != nil {
			b.Fatal(err)
		}
		for x := range rep.Configs {
			for j := range rep.Sims {
				fuzzTotal += rep.Cells[x][j].Mismatches
			}
		}
	}
	b.ReportMetric(float64(tortureTotal), "mismatch_torture")
	b.ReportMetric(float64(officialTotal), "mismatch_official")
	b.ReportMetric(float64(fuzzTotal), "mismatch_fuzzer")
}

// E10 — CSR test framework (paper section VI directions 1+2): runs the
// fine-grained CSR suite across all simulators and reports the coverage
// metric and capability-selection behaviour.
func BenchmarkCSRFramework(b *testing.B) {
	tests := csrtest.Suite(isa.RV32GC)
	var covered, total int
	for i := 0; i < b.N; i++ {
		covered, total, _ = csrtest.Coverage(tests, isa.RV32GC)
		for _, v := range sim.All {
			if !v.Supports(isa.RV32GC) {
				continue
			}
			p := template.Platform{Layout: template.DefaultLayout, Cfg: isa.RV32GC}
			results, err := csrtest.Run(v, p, tests)
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range results {
				if r.Crashed || r.TimedOut || len(r.Mismatch) > 0 {
					b.Fatalf("%s/%s failed", v.Name, r.Test)
				}
			}
		}
	}
	b.ReportMetric(float64(covered), "csr_points_covered")
	b.ReportMetric(float64(total), "csr_points_total")
	b.ReportMetric(float64(len(tests)), "csr_tests")
}
