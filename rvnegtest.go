// Package rvnegtest is a fuzzing-based negative-testing framework for
// RISC-V compliance, reproducing "Closing the RISC-V Compliance Gap:
// Looking from the Negative Testing Side" (Herdt, Große, Drechsler —
// DAC 2020).
//
// The library generates compliance-format test suites with a
// coverage-guided fuzzer (Phase A) and runs them across RISC-V simulator
// models, comparing signatures against a reference simulator (Phase B).
// Unlike the hand-written official compliance suite, the generated suites
// emphasize *negative* testing: illegal, reserved and invalid encodings
// must raise an illegal-instruction exception rather than execute some
// accidental behaviour.
//
// # Quick start
//
//	cfg := rvnegtest.DefaultFuzzConfig()
//	suite, stats, err := rvnegtest.GenerateSuite(cfg, 200000, 0)
//	report, err := rvnegtest.RunCompliance(suite, nil)
//	fmt.Print(report.Render())
//
// The package is a thin facade over the implementation packages:
// internal/fuzz (the engine), internal/filter (the static bytestream
// filter), internal/coverage (guidance signals), internal/sim (the
// simulator models with the paper's seeded defects), internal/compliance
// (Phase B) and the substrates (isa, exec, hart, mem, softfloat, asm, elf,
// template).
package rvnegtest

import (
	"time"

	"rvnegtest/internal/compliance"
	"rvnegtest/internal/core"
	"rvnegtest/internal/coverage"
	"rvnegtest/internal/fuzz"
	"rvnegtest/internal/isa"
	"rvnegtest/internal/sim"
	"rvnegtest/internal/template"
)

// Re-exported types. See the internal packages for full documentation.
type (
	// FuzzConfig parameterizes Phase A (suite generation).
	FuzzConfig = fuzz.Config
	// FuzzStats summarizes a campaign, including the Fig. 4 growth trace.
	FuzzStats = fuzz.Stats
	// Suite is a generated compliance test suite.
	Suite = compliance.Suite
	// Report is a Table-I style compliance result.
	Report = compliance.Report
	// Runner configures Phase B (reference, SUTs, ISA configurations).
	Runner = compliance.Runner
	// Simulator model (reference or a variant with seeded defects).
	Simulator = sim.Variant
	// ISAConfig is an RV32 ISA configuration.
	ISAConfig = isa.Config
	// GrowthResult is one configuration's outcome of the Fig. 4
	// experiment.
	GrowthResult = core.GrowthResult
	// Family selects the test-template family: FamilyUser (the paper's
	// trap-terminates template) or FamilyTrap (the trap-recording
	// template; traps are desired events).
	Family = template.Family
)

// Template families. FamilyUser is the zero value and reproduces the
// paper's campaigns byte-for-byte; FamilyTrap generates trap-rich suites
// whose signatures include the trap-record region.
const (
	FamilyUser = template.FamilyUser
	FamilyTrap = template.FamilyTrap
)

// ParseFamily parses a template family name ("user", "trap").
func ParseFamily(s string) (Family, bool) { return template.ParseFamily(s) }

// Predefined ISA configurations.
var (
	RV32I   = isa.RV32I
	RV32IMC = isa.RV32IMC
	RV32GC  = isa.RV32GC
)

// ParseISA parses an RV32 configuration name such as "RV32IMC".
func ParseISA(s string) (ISAConfig, error) { return isa.ParseConfig(s) }

// Simulators returns all simulator models (the reference plus the five
// modelled real-world simulators).
func Simulators() []*Simulator { return sim.All }

// SimulatorByName finds a simulator model ("reference", "riscvOVPsim",
// "Spike", "VP", "GRIFT", "sail-riscv").
func SimulatorByName(name string) (*Simulator, bool) { return sim.ByName(name) }

// DefaultFuzzConfig mirrors the paper's campaign settings with the v3
// coverage configuration (code coverage + custom rules + 16384-point hash
// coverage).
func DefaultFuzzConfig() FuzzConfig { return fuzz.DefaultConfig() }

// CoverageConfig selects one of the paper's coverage configurations
// ("v0".."v3") on a fuzzing configuration.
func CoverageConfig(cfg FuzzConfig, name string) (FuzzConfig, bool) {
	opts, ok := coverage.ByName(name)
	if !ok {
		return cfg, false
	}
	cfg.Coverage = opts
	return cfg, true
}

// GenerateSuite runs Phase A: a fuzzing campaign bounded by execution
// count and/or wall time (zero disables a bound; at least one must be
// set).
func GenerateSuite(cfg FuzzConfig, maxExecs uint64, maxDur time.Duration) (*Suite, FuzzStats, error) {
	return core.GenerateSuite(cfg, maxExecs, maxDur)
}

// DefaultRunner reproduces the paper's Table I setup: riscvOVPsim as the
// reference, Spike/VP/sail-riscv/GRIFT under test, on RV32I, RV32IMC and
// RV32GC.
func DefaultRunner() *Runner { return compliance.DefaultRunner() }

// RunCompliance runs Phase B over a suite. A nil runner uses
// DefaultRunner.
func RunCompliance(suite *Suite, r *Runner) (*Report, error) {
	if r == nil {
		r = compliance.DefaultRunner()
	}
	return r.Run(suite)
}

// GrowthExperiment reproduces Fig. 4: the v0..v3 coverage configurations
// with an identical budget; each result's trace is the
// test-cases-vs-executions curve.
func GrowthExperiment(maxExecs uint64, maxDur time.Duration, seed int64) ([]GrowthResult, error) {
	return core.GrowthExperiment(maxExecs, maxDur, seed)
}

// Pipeline runs both phases back to back.
func Pipeline(cfg FuzzConfig, maxExecs uint64, maxDur time.Duration, r *Runner) (*Suite, *Report, FuzzStats, error) {
	return core.Pipeline(cfg, maxExecs, maxDur, r)
}

// LoadSuite reads a serialized suite file; see Suite.Save.
func LoadSuite(path string) (*Suite, error) { return compliance.LoadSuite(path) }

// OfficialStyleSuite builds the directed positive suite modelling the
// official hand-written compliance test suite for one configuration
// (per-extension, valid instructions only). Per the paper, such suites
// catch only GRIFT's SC.W defect among the modelled bugs.
func OfficialStyleSuite(cfg ISAConfig) (*Suite, error) { return compliance.OfficialStyleSuite(cfg) }

// ContinuousResult aggregates repeated generate-and-compare rounds.
type ContinuousResult = core.ContinuousResult

// Continuous runs the paper's continuous negative-testing mode: `rounds`
// pipeline iterations with fresh seeds, accumulating distinct findings.
func Continuous(cfg FuzzConfig, rounds int, execsPerRound uint64, r *Runner) (*ContinuousResult, error) {
	return core.Continuous(cfg, rounds, execsPerRound, r)
}
