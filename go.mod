module rvnegtest

go 1.22
